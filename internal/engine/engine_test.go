package engine

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"soarpsme/internal/conflict"
	"soarpsme/internal/ops5"
	"soarpsme/internal/prun"
	"soarpsme/internal/rete"
)

func run(t *testing.T, src string, cfg Config) (*Engine, string) {
	t.Helper()
	var out bytes.Buffer
	cfg.Output = &out
	e := New(cfg)
	if err := e.LoadProgram(src); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunOPS5(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return e, out.String()
}

const counterSrc = `
(literalize counter n)
(startup (make counter ^n 0))
(p count-up
  (counter ^n { <n> < 10 })
  -->
  (modify 1 ^n (compute <n> + 1)))
(p done
  (counter ^n 10)
  -->
  (write done)
  (halt))
`

func TestCounterLoop(t *testing.T) {
	e, out := run(t, counterSrc, DefaultConfig())
	if !e.Halted() {
		t.Fatalf("did not halt")
	}
	if !strings.Contains(out, "done") {
		t.Fatalf("output %q missing done", out)
	}
	if e.Fired != 11 {
		t.Fatalf("fired %d, want 11", e.Fired)
	}
	if e.WM.Len() != 1 {
		t.Fatalf("WM len %d, want 1", e.WM.Len())
	}
}

func TestCounterLoopParallel(t *testing.T) {
	for _, procs := range []int{2, 4, 8} {
		for _, pol := range []prun.Policy{prun.SingleQueue, prun.MultiQueue} {
			cfg := DefaultConfig()
			cfg.Processes = procs
			cfg.Policy = pol
			e, _ := run(t, counterSrc, cfg)
			if e.Fired != 11 {
				t.Fatalf("procs=%d policy=%v: fired %d, want 11", procs, pol, e.Fired)
			}
		}
	}
}

func TestWriteOutput(t *testing.T) {
	_, out := run(t, `
(literalize item name qty)
(startup (make item ^name bolt ^qty 42))
(p report (item ^name <n> ^qty <q>) --> (write have <q> <n>) (remove 1))
`, DefaultConfig())
	if strings.TrimSpace(out) != "have 42 bolt" {
		t.Fatalf("output = %q", out)
	}
}

func TestRemoveStopsRefiring(t *testing.T) {
	e, _ := run(t, `
(literalize tick)
(startup (make tick))
(p once (tick) --> (remove 1))
`, DefaultConfig())
	if e.Fired != 1 {
		t.Fatalf("fired %d, want 1", e.Fired)
	}
	if e.WM.Len() != 0 {
		t.Fatalf("WM not empty")
	}
}

func TestRefraction(t *testing.T) {
	// Without removing its wme, a production fires once per instantiation
	// (refraction), so the run terminates.
	e, _ := run(t, `
(literalize fact v)
(startup (make fact ^v 1) (make fact ^v 2))
(p note (fact ^v <v>) --> (make seen ^v <v>))
`, DefaultConfig())
	if e.Fired != 2 {
		t.Fatalf("fired %d, want 2", e.Fired)
	}
}

func TestLEXPrefersRecent(t *testing.T) {
	// LEX: the instantiation with the most recent time tag fires first.
	_, out := run(t, `
(literalize ev name)
(startup (make ev ^name old) (make ev ^name new))
(p hit (ev ^name <n>) --> (write <n>) (remove 1))
`, DefaultConfig())
	lines := strings.Fields(out)
	if len(lines) != 2 || lines[0] != "new" || lines[1] != "old" {
		t.Fatalf("LEX order wrong: %v", lines)
	}
}

func TestMEAFirstCERecency(t *testing.T) {
	// MEA orders on the first CE's time tag: goal2 is more recent, so the
	// instantiation matching goal2 fires first even though its second wme
	// is older.
	src := `
(strategy mea)
(literalize goal id)
(literalize datum id v)
(startup (make datum ^id g2 ^v x) (make datum ^id g1 ^v y)
         (make goal ^id g1) (make goal ^id g2))
(p act (goal ^id <g>) (datum ^id <g> ^v <v>) --> (write <g>) (remove 1))
`
	_, out := run(t, src, DefaultConfig())
	lines := strings.Fields(out)
	if len(lines) != 2 || lines[0] != "g2" || lines[1] != "g1" {
		t.Fatalf("MEA order wrong: %v", lines)
	}
}

func TestSpecificityTieBreak(t *testing.T) {
	// Same time tags: the more specific production wins.
	_, out := run(t, `
(literalize obj kind size)
(startup (make obj ^kind box ^size 3))
(p specific (obj ^kind box ^size 3) --> (write specific) (remove 1))
(p generic (obj ^kind box) --> (write generic) (remove 1))
`, DefaultConfig())
	if strings.Fields(out)[0] != "specific" {
		t.Fatalf("specificity order wrong: %q", out)
	}
}

func TestModifyPreservesOtherFields(t *testing.T) {
	e, out := run(t, `
(literalize rec a b c)
(startup (make rec ^a 1 ^b 2 ^c 3))
(p bump (rec ^a 1 ^b <b>) --> (modify 1 ^a 9) (write b <b>))
(p verify (rec ^a 9 ^b 2 ^c 3) --> (write ok) (halt))
`, DefaultConfig())
	if !e.Halted() || !strings.Contains(out, "ok") {
		t.Fatalf("modify lost fields: %q", out)
	}
}

func TestBindGensymCompute(t *testing.T) {
	_, out := run(t, `
(literalize c n)
(startup (make c ^n 4))
(p go (c ^n <n>)
  -->
  (bind <m> (compute <n> * (compute <n> + 1)))
  (bind <g>)
  (write m <m>)
  (remove 1))
`, DefaultConfig())
	if !strings.Contains(out, "m 20") {
		t.Fatalf("compute wrong: %q", out)
	}
}

func TestComputeErrors(t *testing.T) {
	cfg := DefaultConfig()
	e := New(cfg)
	err := e.LoadProgram(`
(literalize c n)
(startup (make c ^n sym))
(p bad (c ^n <n>) --> (make o ^v (compute <n> + 1)))
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunOPS5(); err == nil {
		t.Fatalf("compute on symbol should error")
	}
	e2 := New(cfg)
	if err := e2.LoadProgram(`
(literalize c n)
(startup (make c ^n 1))
(p bad (c ^n <n>) --> (make o ^v (compute <n> // 0)))
`); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RunOPS5(); err == nil {
		t.Fatalf("division by zero should error")
	}
}

func TestHaltStopsImmediately(t *testing.T) {
	e, _ := run(t, `
(literalize t v)
(startup (make t ^v 1) (make t ^v 2) (make t ^v 3))
(p stop (t ^v <v>) --> (halt))
`, DefaultConfig())
	if e.Fired != 1 {
		t.Fatalf("fired %d after halt, want 1", e.Fired)
	}
}

func TestMaxCyclesBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 5
	var out bytes.Buffer
	cfg.Output = &out
	e := New(cfg)
	if err := e.LoadProgram(`
(literalize c n)
(startup (make c ^n 0))
(p forever (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
`); err != nil {
		t.Fatal(err)
	}
	fired, err := e.RunOPS5()
	if err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Fatalf("fired %d, want 5 (cycle bound)", fired)
	}
}

func TestRuntimeAdditionThroughEngine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Processes = 4
	e := New(cfg)
	if err := e.LoadProgram(`
(literalize block name color on)
(literalize hand state)
(startup (make block ^name b1 ^color blue)
         (make block ^name b2 ^color red)
         (make hand ^state free))
(p graspable
  (block ^name <b> ^color blue)
  -(block ^on <b>)
  (hand ^state free)
  -->
  (make goal ^obj <b>))
`); err != nil {
		t.Fatal(err)
	}
	if e.CS.Len() != 1 {
		t.Fatalf("CS len %d, want 1", e.CS.Len())
	}
	chunk, err := ops5.ParseProduction(`
(p chunk-red
  (block ^name <b> ^color red)
  -(block ^on <b>)
  (hand ^state free)
  -->
  (make goal ^obj <b>))`, e.Tab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AddProductionRuntime(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Update.Tasks == 0 {
		t.Fatalf("update cycle ran no tasks")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.CS.Len() != 2 {
		t.Fatalf("CS len after chunk = %d, want 2", e.CS.Len())
	}
	// The chunk's instantiation is immediately fireable.
	names := map[string]int{}
	for _, in := range e.CS.All() {
		names[in.Prod.Name]++
	}
	if names["chunk-red"] != 1 || names["graspable"] != 1 {
		t.Fatalf("CS contents wrong: %v", names)
	}
}

func TestRuntimeAdditionSharedVsUnshared(t *testing.T) {
	// Sharing reduces the number of new nodes per chunk.
	build := func(share bool) int {
		cfg := DefaultConfig()
		cfg.Rete.ShareBeta = share
		e := New(cfg)
		if err := e.LoadProgram(`
(literalize a x)
(literalize b x)
(literalize c x)
(p base (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (make o))
(startup (make a ^x 1) (make b ^x 1) (make c ^x 1))
`); err != nil {
			t.Fatal(err)
		}
		chunk, err := ops5.ParseProduction(`(p ch (a ^x <v>) (b ^x <v>) (c ^x <> <v>) --> (make o2))`, e.Tab)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.AddProductionRuntime(chunk)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Info.NewBeta)
	}
	shared, unshared := build(true), build(false)
	if shared >= unshared {
		t.Fatalf("sharing did not reduce new nodes: shared %d, unshared %d", shared, unshared)
	}
}

// opsFinalCS runs a program and returns the sorted final conflict set.
func opsFinalCS(t *testing.T, src string, cfg Config) []string {
	e := New(cfg)
	if err := e.LoadProgram(src); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, in := range e.CS.All() {
		ids := make([]uint64, len(in.WMEs))
		for i, w := range in.WMEs {
			ids[i] = w.ID
		}
		keys = append(keys, fmt.Sprintf("%s%v", in.Prod.Name, ids))
	}
	sort.Strings(keys)
	return keys
}

const equivSrc = `
(literalize g id s)
(literalize d s v n)
(literalize e v)
(startup
  (make g ^id g1 ^s s1)
  (make g ^id g2 ^s s2)
  (make d ^s s1 ^v a ^n 1)
  (make d ^s s1 ^v b ^n 2)
  (make d ^s s2 ^v a ^n 3)
  (make d ^s s2 ^v c ^n 4)
  (make e ^v a)
  (make e ^v b))
(p pj (g ^id <g> ^s <s>) (d ^s <s> ^v <v> ^n > 1) (e ^v <v>) --> (make out))
(p pn (g ^id <g> ^s <s>) -(d ^s <s> ^v c) --> (make out2))
`

func TestParallelMatchEquivalence(t *testing.T) {
	ref := opsFinalCS(t, equivSrc, DefaultConfig())
	if len(ref) == 0 {
		t.Fatalf("reference CS empty")
	}
	for _, procs := range []int{2, 4, 8, 13} {
		for _, pol := range []prun.Policy{prun.SingleQueue, prun.MultiQueue} {
			cfg := DefaultConfig()
			cfg.Processes = procs
			cfg.Policy = pol
			got := opsFinalCS(t, equivSrc, cfg)
			if fmt.Sprint(got) != fmt.Sprint(ref) {
				t.Fatalf("procs=%d %v: CS %v != %v", procs, pol, got, ref)
			}
		}
	}
}

func TestBilinearEngineEquivalence(t *testing.T) {
	src := `
(literalize g id)
(literalize p g name)
(literalize s g v)
(literalize o s name type)
(startup
  (make g ^id g1)
  (make p ^g g1 ^name strips)
  (make s ^g g1 ^v s1)
  (make o ^s s1 ^name o1 ^type robot)
  (make o ^s s1 ^name o2 ^type door)
  (make o ^s s1 ^name o3 ^type door)
  (make o ^s s1 ^name o4 ^type box)
  (make o ^s s1 ^name o5 ^type box)
  (make o ^s s1 ^name o6 ^type box))
(p monitor
  (g ^id <g>) (p ^g <g> ^name strips) (s ^g <g> ^v <s>)
  (o ^s <s> ^name o1 ^type robot)
  (o ^s <s> ^name o2 ^type door)
  (o ^s <s> ^name o3 ^type door)
  (o ^s <s> ^name o4 ^type box)
  (o ^s <s> ^name o5 ^type <ty>)
  (o ^s <s> ^name o6 ^type <ty>)
  -->
  (make out))
`
	ref := opsFinalCS(t, src, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Rete.Organization = rete.Bilinear
	cfg.Rete.ContextCEs = 3
	cfg.Rete.GroupCEs = 2
	cfg.Processes = 4
	got := opsFinalCS(t, src, cfg)
	if fmt.Sprint(got) != fmt.Sprint(ref) || len(ref) != 1 {
		t.Fatalf("bilinear CS %v != linear %v", got, ref)
	}
}

func TestStrategyAccessors(t *testing.T) {
	e := New(DefaultConfig())
	if err := e.LoadProgram(`(strategy mea)
(literalize c v)
(p x (c) --> (halt))`); err != nil {
		t.Fatal(err)
	}
	if e.Strategy() != conflict.MEA {
		t.Fatalf("strategy not MEA")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	e := New(DefaultConfig())
	if err := e.LoadProgram(`(p broken`); err == nil {
		t.Fatalf("parse error not reported")
	}
	if err := e.LoadProgram(`(literalize c v)
(p q (c ^v > <x>) --> (halt))`); err == nil {
		t.Fatalf("compile error not reported")
	}
}

func TestExciseActionRHS(t *testing.T) {
	// A production that excises another at run time: once "gate" fires, it
	// removes "noisy", whose remaining instantiations must never fire.
	e, out := run(t, `
(literalize ev n)
(startup (make ev ^n 1) (make ev ^n 2) (make ev ^n 3))
(p noisy (ev ^n <n>) --> (write noisy <n>))
(p gate (ev ^n 3) --> (write gating) (excise noisy) (remove 1))
`, DefaultConfig())
	if e.NW.Lookup("noisy") != nil {
		t.Fatalf("noisy still in network")
	}
	// gate fires first (recency: n=3 wme is newest, and gate is more
	// specific); after the excise, no noisy output appears.
	if strings.Contains(out, "noisy") {
		t.Fatalf("excised production fired: %q", out)
	}
	if !strings.Contains(out, "gating") {
		t.Fatalf("gate did not fire: %q", out)
	}
}

func TestExciseUnknownProductionErrors(t *testing.T) {
	cfg := DefaultConfig()
	e := New(cfg)
	if err := e.LoadProgram(`
(literalize c v)
(startup (make c ^v 1))
(p bad (c ^v 1) --> (excise no-such-production) (remove 1))
`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunOPS5(); err == nil {
		t.Fatalf("excising unknown production should error")
	}
}

func TestElementVariables(t *testing.T) {
	// OPS5 element variables: { <w> (ce) } with (remove <w>) / (modify <w>).
	e, out := run(t, `
(literalize slot name v)
(startup (make slot ^name a ^v 1) (make slot ^name b ^v 1))
(p bump-a
  { <w> (slot ^name a ^v 1) }
  -->
  (modify <w> ^v 2))
(p drop-b
  (slot ^name a ^v 2)
  { <x> (slot ^name b) }
  -->
  (write dropping b)
  (remove <x>))
`, DefaultConfig())
	if !strings.Contains(out, "dropping b") {
		t.Fatalf("element-variable chain did not fire: %q", out)
	}
	if e.WM.Len() != 1 {
		t.Fatalf("WM len = %d, want 1", e.WM.Len())
	}
}

func TestElementVariableErrors(t *testing.T) {
	e := New(DefaultConfig())
	if err := e.LoadProgram(`
(literalize c v)
(p bad (c ^v 1) --> (remove <nosuch>))
`); err == nil {
		t.Fatalf("unbound element variable accepted")
	}
	e2 := New(DefaultConfig())
	if err := e2.LoadProgram(`
(literalize c v)
(p bad { <w> (c ^v 1) } { <w> (c ^v 2) } --> (remove <w>))
`); err == nil {
		t.Fatalf("duplicate element variable accepted")
	}
}

func TestComputeOperators(t *testing.T) {
	_, out := run(t, `
(literalize c n)
(startup (make c ^n 7))
(p ops (c ^n <n>)
  -->
  (write sum (compute <n> + 3))
  (write diff (compute <n> - 3))
  (write prod (compute <n> * 3))
  (write quot (compute <n> // 3))
  (write mod (compute <n> % 3))
  (write fdiv (compute 7.5 // 2.5))
  (write fsum (compute <n> + 0.5))
  (remove 1))
`, DefaultConfig())
	for _, want := range []string{"sum 10", "diff 4", "prod 21", "quot 2", "mod 1", "fdiv 3", "fsum 7.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestComputeModFloatErrors(t *testing.T) {
	e := New(DefaultConfig())
	if err := e.LoadProgram(`
(literalize c n)
(startup (make c ^n 1))
(p bad (c ^n <n>) --> (make o ^v (compute 1.5 % <n>)))
`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunOPS5(); err == nil {
		t.Fatalf("float modulo should error")
	}
}
