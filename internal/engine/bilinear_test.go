// Bilinear conformance: restructuring is a pure network-shape change, so
// the per-cycle conflict sets must be byte-identical across off/all/auto
// organizations, at every process count, with unlink default-on — and the
// same must hold for restructured chunks added at run time on a shared
// image's copy-on-write suffix. Runs under the CI -race leg.
package engine_test

import (
	"fmt"
	"testing"

	"soarpsme/internal/engine"
	"soarpsme/internal/prun"
	"soarpsme/internal/rete"
	"soarpsme/internal/tasks/cypress"
)

// runCypressBilinear drives the cypress workload — chunks added at run time
// through the production-addition path — at the given process count and
// organization. Unlink stays at its default (on).
func runCypressBilinear(t *testing.T, procs int, org rete.Organization) unlinkRun {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Processes = procs
	cfg.Policy = prun.WorkStealing
	cfg.Rete.Organization = org
	e := engine.New(cfg)
	sys := cypress.Generate(cypress.Params{Productions: 40, Cycles: 15, Seed: 9})
	if err := e.LoadProgram(sys.Source); err != nil {
		t.Fatalf("load: %v", err)
	}
	drv := cypress.NewDriver(sys, e.Tab, e.WM)
	var r unlinkRun
	next := 0
	for c := 0; c < sys.Params.Cycles; c++ {
		e.ApplyAndMatch(drv.Batch())
		for next < len(drv.ChunkAt) && drv.ChunkAt[next] == c {
			ast, err := sys.ParseChunk(next, e.Tab)
			if err != nil {
				t.Fatalf("chunk %d: %v", next, err)
			}
			if _, err := e.AddProductionRuntime(ast); err != nil {
				t.Fatalf("add chunk %d: %v", next, err)
			}
			next++
		}
		r.fps = append(r.fps, csFingerprint(e))
	}
	r.suppress = e.NW.Stats.NullSuppressed.Load()
	r.auditErr = e.AuditInvariants()
	// Selection sanity: auto must restructure the cypress long chains
	// (26-CE class productions and 51-CE chunks), all must restructure
	// everything eligible, off nothing.
	restructured := 0
	for _, p := range e.NW.Productions() {
		if p.Restructured {
			restructured++
		}
	}
	switch org {
	case rete.Linear:
		if restructured != 0 {
			t.Fatalf("off restructured %d productions", restructured)
		}
	default:
		if restructured == 0 {
			t.Fatalf("%v restructured nothing", org)
		}
	}
	return r
}

// TestBilinearConformance compares per-cycle conflict-set fingerprints of
// the bilinear organizations against the linear serial baseline across
// process counts 1/4/13 with unlink default-on.
func TestBilinearConformance(t *testing.T) {
	base := runCypressBilinear(t, 1, rete.Linear)
	if base.auditErr != nil {
		t.Fatalf("baseline audit: %v", base.auditErr)
	}
	for _, org := range []rete.Organization{rete.Bilinear, rete.BilinearAuto} {
		for _, procs := range []int{1, 4, 13} {
			if testing.Short() && procs == 13 {
				continue
			}
			org, procs := org, procs
			t.Run(fmt.Sprintf("%v/p%d", org, procs), func(t *testing.T) {
				r := runCypressBilinear(t, procs, org)
				if r.auditErr != nil {
					t.Fatalf("audit: %v", r.auditErr)
				}
				if len(r.fps) != len(base.fps) {
					t.Fatalf("cycle count %d != baseline %d", len(r.fps), len(base.fps))
				}
				for c := range r.fps {
					if r.fps[c] != base.fps[c] {
						t.Fatalf("cycle %d diverged from linear serial baseline:\n got  %s\n want %s",
							c, r.fps[c], base.fps[c])
					}
				}
			})
		}
	}
}

// TestBilinearImageCoWExcise: a session over a SHARED auto-bilinear image
// adds a restructured chunk on its private copy-on-write suffix, matches,
// then excises it — the suffix rebuild must leave the session byte-
// equivalent to one that never learned the chunk, and the shared prefix
// untouched (a second session on the same image keeps matching).
func TestBilinearImageCoWExcise(t *testing.T) {
	opts := engine.DefaultConfig().Rete
	opts.Organization = rete.BilinearAuto
	sys := cypress.Generate(cypress.Params{Productions: 40, Cycles: 15, Seed: 9})
	img, err := engine.CompileProgram(sys.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	mkSession := func(procs int) *engine.Engine {
		cfg := engine.DefaultConfig()
		cfg.Processes = procs
		cfg.Policy = prun.WorkStealing
		cfg.Rete.Organization = rete.BilinearAuto
		return engine.NewFromImage(img, cfg)
	}
	learner := mkSession(4)
	witness := mkSession(1)
	drvL := cypress.NewDriver(sys, learner.Tab, learner.WM)
	drvW := cypress.NewDriver(sys, witness.Tab, witness.WM)

	var witnessFPs []string
	var chunkName string
	for c := 0; c < sys.Params.Cycles; c++ {
		learner.ApplyAndMatch(drvL.Batch())
		witness.ApplyAndMatch(drvW.Batch())
		witnessFPs = append(witnessFPs, csFingerprint(witness))
		if c == 5 {
			ast, err := sys.ParseChunk(0, learner.Tab)
			if err != nil {
				t.Fatal(err)
			}
			res, err := learner.AddProductionRuntime(ast)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Prod.Restructured {
				t.Fatalf("51-CE chunk not restructured on the CoW suffix")
			}
			chunkName = res.Prod.Name
		}
		if c == 10 {
			if err := learner.ExciseProduction(chunkName); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := learner.AuditInvariants(); err != nil {
		t.Fatalf("learner audit: %v", err)
	}
	if err := witness.AuditInvariants(); err != nil {
		t.Fatalf("witness audit: %v", err)
	}
	// After excise the learner's conflict set must equal the witness's
	// (same trajectory, chunk gone).
	if got, want := csFingerprint(learner), witnessFPs[len(witnessFPs)-1]; got != want {
		t.Fatalf("post-excise learner diverges from never-learned witness:\n got  %s\n want %s", got, want)
	}
}
