package engine

import (
	"sync"
	"sync/atomic"

	"soarpsme/internal/rete"
)

// ImageCache is a process-wide, ref-counted cache of compiled program
// images keyed by canonical program hash. Concurrent requests for the same
// program are deduplicated (one compile, everybody waits on it); released
// images are kept warm so a session churn of one program never recompiles.
type ImageCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	img   *ProgramImage
	err   error
	ready chan struct{}
	refs  int // live sessions holding the image
}

// NewImageCache returns an empty cache.
func NewImageCache() *ImageCache {
	return &ImageCache{entries: map[string]*cacheEntry{}}
}

// Get returns the compiled image for a program, compiling it on first use.
// hit reports whether the image was already cached (a concurrent request
// that waits on another goroutine's in-flight compile counts as a hit: it
// paid no compile). Each successful Get takes a reference; pair it with
// Release when the session ends.
func (c *ImageCache) Get(src string, opts rete.Options) (img *ProgramImage, hit bool, err error) {
	key := ProgramHash(src, opts)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.refs++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.img, true, nil
	}
	e = &cacheEntry{ready: make(chan struct{}), refs: 1}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	e.img, e.err = CompileProgram(src, opts)
	close(e.ready)
	if e.err != nil {
		// Failed compiles are not cached: a later request retries.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		return nil, false, e.err
	}
	return e.img, false, nil
}

// Release drops one session's reference. Zero-ref images stay cached
// (keep-warm): the topology's whole point is surviving session churn.
func (c *ImageCache) Release(img *ProgramImage) {
	if img == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[img.Hash]; ok && e.refs > 0 {
		e.refs--
	}
	c.mu.Unlock()
}

// CacheStats is a point-in-time view of the cache.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Live is the number of distinct compiled images resident.
	Live int `json:"live"`
	// Sessions is the total reference count across images.
	Sessions int `json:"sessions"`
}

// Stats returns cache counters.
func (c *ImageCache) Stats() CacheStats {
	s := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	c.mu.Lock()
	s.Live = len(c.entries)
	for _, e := range c.entries {
		s.Sessions += e.refs
	}
	c.mu.Unlock()
	return s
}
