package engine

import (
	"sort"
	"strings"
	"testing"

	"soarpsme/internal/value"
	"soarpsme/internal/wme"
)

const factSrc = `
(literalize fact v)
(literalize seen v)
(p note (fact ^v <v>) --> (make seen ^v <v>))
`

// csLines renders the conflict set canonically for comparison.
func csLines(e *Engine) []string {
	var out []string
	for _, in := range e.CS.All() {
		var b strings.Builder
		b.WriteString(in.Prod.Name)
		for _, w := range in.WMEs {
			b.WriteByte(' ')
			b.WriteString(e.Tab.Format(w.Field(0)))
		}
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}

func factDelta(e *Engine, v int64) wme.Delta {
	cls := e.Tab.Intern("fact")
	return wme.Delta{Op: wme.Add, WME: e.WM.Make(cls, []value.Value{value.IntVal(v)})}
}

// TestRemoveUnknownWMEBadDelta is the WM-delta symmetry regression test:
// removing a wme that was never inserted (or already removed) must be
// dropped and counted like a duplicate insert — a failed, recovered cycle
// whose surviving deltas still apply — not silently ignored.
func TestRemoveUnknownWMEBadDelta(t *testing.T) {
	mk := func() *Engine {
		e := New(DefaultConfig())
		if err := e.LoadProgram(factSrc); err != nil {
			t.Fatal(err)
		}
		return e
	}

	e := mk()
	ghost := e.WM.Make(e.Tab.Intern("fact"), []value.Value{value.IntVal(99)})
	cs := e.ApplyAndMatch([]wme.Delta{
		factDelta(e, 1),
		{Op: wme.Remove, WME: ghost}, // never inserted
		factDelta(e, 2),
	})
	if !cs.Failed || !cs.Recovered {
		t.Fatalf("bad removal: Failed=%v Recovered=%v, want cycle failed and recovered", cs.Failed, cs.Recovered)
	}
	if !strings.Contains(cs.Reason, "unknown wme") {
		t.Fatalf("Reason = %q, want mention of unknown wme", cs.Reason)
	}
	if e.BadDeltas != 1 {
		t.Fatalf("BadDeltas = %d, want 1", e.BadDeltas)
	}
	if e.WM.Len() != 2 {
		t.Fatalf("WM len = %d, want 2 (good deltas applied)", e.WM.Len())
	}
	if err := e.AuditInvariants(); err != nil {
		t.Fatal(err)
	}

	// Double removal: the second remove of the same wme is the bad one.
	w := factDelta(e, 3)
	if cs := e.ApplyAndMatch([]wme.Delta{w}); cs.Failed {
		t.Fatalf("clean add failed: %s", cs.Reason)
	}
	cs = e.ApplyAndMatch([]wme.Delta{
		{Op: wme.Remove, WME: w.WME},
		{Op: wme.Remove, WME: w.WME},
	})
	if !cs.Failed || e.BadDeltas != 2 {
		t.Fatalf("double removal: Failed=%v BadDeltas=%d, want failed cycle and 2", cs.Failed, e.BadDeltas)
	}
	if err := e.AuditInvariants(); err != nil {
		t.Fatal(err)
	}

	// The recovered engine's match state must equal a clean run of the
	// surviving deltas.
	clean := mk()
	clean.ApplyAndMatch([]wme.Delta{factDelta(clean, 1), factDelta(clean, 2)})
	got, want := csLines(e), csLines(clean)
	if len(got) != len(want) {
		t.Fatalf("conflict set diverged: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("conflict set diverged: %v vs %v", got, want)
		}
	}
}

// TestDuplicateInsertCountsBadDelta pins the insert half of the symmetry:
// the engine-level BadDeltas counter moves on duplicate inserts too.
func TestDuplicateInsertCountsBadDelta(t *testing.T) {
	e := New(DefaultConfig())
	if err := e.LoadProgram(factSrc); err != nil {
		t.Fatal(err)
	}
	d := factDelta(e, 7)
	if cs := e.ApplyAndMatch([]wme.Delta{d}); cs.Failed {
		t.Fatalf("first insert failed: %s", cs.Reason)
	}
	cs := e.ApplyAndMatch([]wme.Delta{d})
	if !cs.Failed || !cs.Recovered {
		t.Fatalf("duplicate insert: Failed=%v Recovered=%v", cs.Failed, cs.Recovered)
	}
	if e.BadDeltas != 1 {
		t.Fatalf("BadDeltas = %d, want 1", e.BadDeltas)
	}
	if err := e.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStepMatchesRunOPS5 drives the counter program one Step at a time and
// checks it reproduces RunOPS5's firing count and halt behavior.
func TestStepMatchesRunOPS5(t *testing.T) {
	e := New(DefaultConfig())
	if err := e.LoadProgram(counterSrc); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for {
		ok, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		fired++
	}
	if fired != 11 || !e.Halted() {
		t.Fatalf("stepped run: fired=%d halted=%v, want 11 fired and halted", fired, e.Halted())
	}
	if ok, err := e.Step(); ok || err != nil {
		t.Fatalf("Step after halt = (%v, %v), want (false, nil)", ok, err)
	}
}
