// Relink stress: the unlink fast path takes lock-free suppression
// snapshots that are re-checked under the line lock, so the dangerous
// window is a join's opposite memory crossing the empty<->non-empty
// boundary while activations are in flight. This test hammers exactly
// that boundary — right memories emptied and refilled, a gate CE whose
// removal empties a downstream join's left memory — at 1/4/13 processes
// under both lock-queue and work-stealing scheduling, and demands:
//
//   - per-cycle conflict-set fingerprints byte-identical to the serial
//     unlink=off run (the filter is a pure scheduling optimization);
//   - the activation-conservation oracle: ordinary tasks (Tasks minus the
//     suppressed-batch carrier tasks) plus suppressed activations must
//     equal the unlink=off task count, so the suppressed counter can
//     never undercount — a suppressed activation that bypassed the
//     counter (or a lost batch entry) breaks the equation.
//
// Run under -race this doubles as the relink-race detector: the snapshot,
// the batched right activations, and the counter updates all execute
// concurrently with the boundary crossings.
package engine_test

import (
	"fmt"
	"testing"

	"soarpsme/internal/engine"
	"soarpsme/internal/prun"
	"soarpsme/internal/value"
	"soarpsme/internal/wme"
)

const relinkProg = `
(literalize gate g)
(literalize left k)
(literalize right k)
(literalize hit k)
(p pair (gate ^g 1) (left ^k <k>) (right ^k <k>) --> (make hit ^k <k>))
`

// relinkScript builds the per-cycle delta batches. Adds and removes never
// share a cycle, so no conjugate add/remove pair can annihilate through a
// tombstone and the total activation count is schedule-independent — the
// property the conservation oracle needs. Each round crosses both unlink
// boundaries: the right memory empties and refills (left activations run
// the emit-side suppression), and the gate removal empties the downstream
// join's left memory (right activations run the injection-side batches).
func relinkScript(e *engine.Engine) [][]wme.Delta {
	tab := e.Tab
	kSym := func(i int) []value.Value { return []value.Value{value.IntVal(int64(i % 7))} }
	mk := func(class string, i int) *wme.WME { return e.WM.Make(tab.Intern(class), kSym(i)) }

	var batches [][]wme.Delta
	adds := func(ws ...*wme.WME) {
		ds := make([]wme.Delta, len(ws))
		for i, w := range ws {
			ds[i] = wme.Delta{Op: wme.Add, WME: w}
		}
		batches = append(batches, ds)
	}
	removes := func(ws ...*wme.WME) {
		ds := make([]wme.Delta, len(ws))
		for i, w := range ws {
			ds[i] = wme.Delta{Op: wme.Remove, WME: w}
		}
		batches = append(batches, ds)
	}

	for round := 0; round < 4; round++ {
		n := 6 + 3*round
		gate := mk("gate", 1)
		adds(gate)
		// Right memory empty: these left activations are all suppressed
		// on the emit side (or scheduled normally with unlink off).
		lefts := make([]*wme.WME, n)
		for i := range lefts {
			lefts[i] = mk("left", i+round)
		}
		adds(lefts...)
		// Non-empty boundary: rights arrive, joins produce hits.
		rights := make([]*wme.WME, n)
		for i := range rights {
			rights[i] = mk("right", i+round)
		}
		adds(rights...)
		// Cross back to empty mid-stream, then refill.
		removes(rights...)
		rights2 := make([]*wme.WME, n)
		for i := range rights2 {
			rights2[i] = mk("right", i+round+1)
		}
		adds(rights2...)
		// Gate removal empties the second join's left memory, so the next
		// right adds ride the injection-side suppressed batches.
		removes(gate)
		rights3 := make([]*wme.WME, n)
		for i := range rights3 {
			rights3[i] = mk("right", i+round+2)
		}
		adds(rights3...)
		// Relink: the gate returns and every live pair must re-match.
		gate2 := mk("gate", 1)
		adds(gate2)
		// Tear the round down so WM stays bounded.
		removes(append(append(append([]*wme.WME{gate2}, lefts...), rights2...), rights3...)...)
	}
	return batches
}

// relinkRun is one execution: per-cycle fingerprints plus the counters the
// conservation oracle needs.
type relinkRun struct {
	fps         []string
	tasks       int64
	suppBatches int64
	suppressed  int64
	auditErr    error
}

func runRelink(t *testing.T, procs int, pol prun.Policy, unlink bool) relinkRun {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Processes = procs
	cfg.Policy = pol
	cfg.Rete.Unlink = unlink
	e := engine.New(cfg)
	if err := e.LoadProgram(relinkProg); err != nil {
		t.Fatalf("load: %v", err)
	}
	var r relinkRun
	for _, ds := range relinkScript(e) {
		cs := e.ApplyAndMatch(ds)
		if cs.Failed && !cs.Recovered {
			t.Fatalf("cycle failed without recovery: %+v", cs)
		}
		r.tasks += int64(cs.Tasks)
		r.suppBatches += cs.SuppBatches
		r.fps = append(r.fps, csFingerprint(e))
	}
	r.suppressed = e.NW.Stats.NullSuppressed.Load()
	r.auditErr = e.AuditInvariants()
	return r
}

func TestRelinkBoundaryStress(t *testing.T) {
	base := runRelink(t, 1, prun.SingleQueue, false)
	if base.suppressed != 0 || base.suppBatches != 0 {
		t.Fatalf("unlink=off run suppressed %d activations in %d batches, want 0",
			base.suppressed, base.suppBatches)
	}
	if base.auditErr != nil {
		t.Fatalf("baseline audit: %v", base.auditErr)
	}
	for _, pol := range []prun.Policy{prun.MultiQueue, prun.WorkStealing} {
		for _, procs := range []int{1, 4, 13} {
			pol, procs := pol, procs
			t.Run(fmt.Sprintf("%v/p%d", pol, procs), func(t *testing.T) {
				r := runRelink(t, procs, pol, true)
				if len(r.fps) != len(base.fps) {
					t.Fatalf("cycle count %d != baseline %d", len(r.fps), len(base.fps))
				}
				for c := range r.fps {
					if r.fps[c] != base.fps[c] {
						t.Fatalf("cycle %d diverged from serial unlink=off baseline:\n got  %s\n want %s",
							c, r.fps[c], base.fps[c])
					}
				}
				if r.auditErr != nil {
					t.Fatalf("audit: %v", r.auditErr)
				}
				if r.suppressed == 0 {
					t.Fatal("unlink=on suppressed no activations (boundary workload inert)")
				}
				// Conservation oracle: every activation either ran as an
				// ordinary task or was counted suppressed. An undercounting
				// suppressed counter (or a dropped batch entry) shows up as
				// ordinary+suppressed < baseline tasks.
				ordinary := r.tasks - r.suppBatches
				if got, want := ordinary+r.suppressed, base.tasks; got != want {
					t.Fatalf("activation conservation: ordinary %d + suppressed %d = %d, want %d (baseline tasks; suppBatches=%d)",
						ordinary, r.suppressed, got, want, r.suppBatches)
				}
			})
		}
	}
}
