package engine

import (
	"bytes"
	"strings"
	"testing"

	"soarpsme/internal/obs"
	"soarpsme/internal/ops5"
)

// TestObservability runs a program with the observer attached and checks
// that the pipeline hooks actually fire: match counters, the cycle
// histogram, the contention flush, and the trace spans.
func TestObservability(t *testing.T) {
	o := obs.New()
	cfg := DefaultConfig()
	cfg.Processes = 4
	cfg.Obs = o
	e, _ := run(t, counterSrc, cfg)
	if !e.Halted() {
		t.Fatal("did not halt")
	}

	if got := o.Counter("match_tasks_total").Value(); got == 0 {
		t.Fatal("match_tasks_total is zero")
	}
	if got := o.Counter("match_cycles_total").Value(); got != uint64(len(e.CycleStats)) {
		t.Fatalf("match_cycles_total = %d, want %d", got, len(e.CycleStats))
	}
	if got := o.Counter("wme_changes_total").Value(); got == 0 {
		t.Fatal("wme_changes_total is zero")
	}
	if got := o.Histogram("match_cycle_seconds").Count(); got != uint64(len(e.CycleStats)) {
		t.Fatalf("match_cycle_seconds count = %d, want %d", got, len(e.CycleStats))
	}
	// The contention flush must agree with the runtime's own cumulative
	// queue-lock counters.
	_, qa := e.RT.QueueLockStats()
	if got := o.Counter("queue_lock_acquires_total").Value(); got != qa {
		t.Fatalf("queue_lock_acquires_total = %d, want %d", got, qa)
	}

	if o.Trc.Len() == 0 {
		t.Fatal("tracer collected no events")
	}
	var buf bytes.Buffer
	if err := o.Trc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"match-cycle"`, `"ph":"X"`, `"cat":"task"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s:\n%.2000s", want, out)
		}
	}

	var mb bytes.Buffer
	if err := o.Reg.WriteText(&mb); err != nil {
		t.Fatal(err)
	}
	metrics := mb.String()
	for _, want := range []string{"match_tasks_total", "queue_lock_spins_total", "# TYPE match_cycle_seconds histogram"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestObservabilityRuntimeAddition checks the run-time addition hooks:
// splice timing, chunk counter and the state-update span.
func TestObservabilityRuntimeAddition(t *testing.T) {
	o := obs.New()
	cfg := DefaultConfig()
	cfg.Obs = o
	var out bytes.Buffer
	cfg.Output = &out
	e := New(cfg)
	if err := e.LoadProgram(`
(literalize item name qty)
(startup (make item ^name bolt ^qty 2) (make item ^name nut ^qty 3))
`); err != nil {
		t.Fatal(err)
	}
	ast, err := ops5.ParseProduction(`(p spot (item ^name bolt ^qty <q>) --> (write found <q>))`, e.Tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddProductionRuntime(ast); err != nil {
		t.Fatal(err)
	}
	if got := o.Counter("chunks_added_total").Value(); got != 1 {
		t.Fatalf("chunks_added_total = %d, want 1", got)
	}
	if got := o.Histogram("rete_add_splice_seconds").Count(); got != 1 {
		t.Fatalf("rete_add_splice_seconds count = %d, want 1", got)
	}
	var buf bytes.Buffer
	if err := o.Trc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"add-production:spot", "state-update:spot"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("trace missing %q span", want)
		}
	}
}

// TestObservabilityDisabled checks the nil path end to end: a nil observer
// in the config must change nothing and panic nowhere.
func TestObservabilityDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Processes = 2
	cfg.Obs = nil
	e, _ := run(t, counterSrc, cfg)
	if e.Fired != 11 {
		t.Fatalf("fired %d, want 11", e.Fired)
	}
	if e.Obs() != nil {
		t.Fatal("Obs() should be nil when disabled")
	}
}
