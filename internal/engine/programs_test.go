package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExampleProgramsRun executes every .ops program shipped under
// examples/ops with several runtime configurations.
func TestExampleProgramsRun(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "ops")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".ops") {
			continue
		}
		found++
		src, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.Processes = procs
			var out bytes.Buffer
			cfg.Output = &out
			e := New(cfg)
			if err := e.LoadProgram(string(src)); err != nil {
				t.Fatalf("%s: %v", ent.Name(), err)
			}
			fired, err := e.RunOPS5()
			if err != nil {
				t.Fatalf("%s: %v", ent.Name(), err)
			}
			if fired == 0 {
				t.Fatalf("%s: nothing fired", ent.Name())
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", ent.Name(), err)
			}
		}
	}
	if found == 0 {
		t.Fatalf("no .ops programs found in %s", dir)
	}
}

// TestMonkeyAndBananas checks the classic demo's full plan.
func TestMonkeyAndBananas(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "ops", "monkey.ops"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	var out bytes.Buffer
	cfg.Output = &out
	e := New(cfg)
	if err := e.LoadProgram(string(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunOPS5(); err != nil {
		t.Fatal(err)
	}
	if !e.Halted() {
		t.Fatalf("monkey did not reach the bananas:\n%s", out.String())
	}
	text := out.String()
	wantOrder := []string{"walks", "pushes", "climbs", "grabs"}
	pos := -1
	for _, w := range wantOrder {
		i := strings.Index(text, w)
		if i < 0 || i < pos {
			t.Fatalf("plan out of order (missing %q):\n%s", w, text)
		}
		pos = i
	}
}

// TestWatchLevels verifies the OPS5-style trace output.
func TestWatchLevels(t *testing.T) {
	src := `
(literalize c v)
(startup (make c ^v 1))
(p go (c ^v 1) --> (modify 1 ^v 2) (halt))
`
	for level, wants := range map[int][]string{
		1: {";; FIRE go"},
		2: {";; FIRE go", "=>WM:", "<=WM:"},
	} {
		cfg := DefaultConfig()
		cfg.Watch = level
		var out bytes.Buffer
		cfg.Output = &out
		e := New(cfg)
		if err := e.LoadProgram(src); err != nil {
			t.Fatal(err)
		}
		if _, err := e.RunOPS5(); err != nil {
			t.Fatal(err)
		}
		for _, w := range wants {
			if !strings.Contains(out.String(), w) {
				t.Fatalf("watch %d missing %q:\n%s", level, w, out.String())
			}
		}
	}
}
