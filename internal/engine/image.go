// Compiled program images: the engine-level face of the rete topology
// split. CompileProgram builds a program's network once and freezes it;
// NewFromImage stamps out sessions against the shared image in O(state)
// instead of O(compile) — the paper's node-sharing economy extended across
// sessions. ImageCache (cache.go) keys images by canonical program hash so
// a process serving many sessions of one program compiles it exactly once.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"soarpsme/internal/conflict"
	"soarpsme/internal/ops5"
	"soarpsme/internal/rete"
	"soarpsme/internal/value"
	"soarpsme/internal/wme"
)

// ProgramImage is an immutable compiled OPS5 program: the frozen rete
// topology plus everything a session needs to run against it. The symbol
// table and class registry are shared by every session of the image (node
// tests hold table-interned symbols); both are internally locked and
// append-only, so concurrent sessions may extend them safely.
type ProgramImage struct {
	// Hash is the canonical cache key: program source + structural options.
	Hash string
	// Source is the exact source the image was compiled from.
	Source string

	Tab      *value.Table
	Reg      *wme.Registry
	Top      *rete.Topology
	Strategy conflict.Strategy
	// Startup holds the program's startup actions; they run per-session
	// (RunStartup), not at compile time, since they create working memory.
	Startup []*ops5.Action
}

// Productions returns the number of productions compiled into the image.
func (img *ProgramImage) Productions() int { return len(img.Top.Productions()) }

// ProgramHash computes the canonical image cache key: a SHA-256 over the
// program source and the structural (topology-level) options. Session-level
// options — Unlink, HashLines — are excluded: they configure per-session
// state, not the compiled graph, so sessions differing only in them share
// one image.
func ProgramHash(src string, opts rete.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "share=%t org=%d ctx=%d grp=%d bdepth=%d linmem=%t\n",
		opts.ShareBeta, opts.Organization, opts.ContextCEs, opts.GroupCEs,
		opts.EffBilinearDepth(), opts.LinearMemories)
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// CompileProgram parses and compiles an OPS5 program into a frozen,
// shareable image. Startup actions are recorded, not executed.
func CompileProgram(src string, opts rete.Options) (*ProgramImage, error) {
	tab := value.NewTable()
	reg := wme.NewRegistry()
	nw := rete.NewNetwork(tab, reg, nil, opts)
	prog, err := ops5.Parse(src, tab)
	if err != nil {
		return nil, err
	}
	for _, lit := range prog.Literalize {
		reg.Declare(lit.Class, lit.Attrs...)
	}
	for _, p := range prog.Productions {
		if _, _, err := nw.AddProduction(p); err != nil {
			return nil, err
		}
	}
	return &ProgramImage{
		Hash:     ProgramHash(src, opts),
		Source:   src,
		Tab:      tab,
		Reg:      reg,
		Top:      nw.Freeze(),
		Strategy: conflict.ParseStrategy(prog.Strategy),
		Startup:  prog.Startup,
	}, nil
}

// NewFromImage creates a session engine over a shared compiled image:
// fresh working memory, conflict set, token tables and counters — no
// compilation. Structural rete options come from the image; cfg.Rete
// contributes only the session-level Unlink/HashLines. Startup actions are
// NOT run — call RunStartup for a fresh session, or skip it when restoring
// a snapshot whose working memory is replayed explicitly.
func NewFromImage(img *ProgramImage, cfg Config) *Engine {
	cs := conflict.New()
	nw := rete.NewFromTopology(img.Top, cs, cfg.Rete)
	e := assemble(img.Tab, img.Reg, nw, cs, cfg)
	e.strategy = img.Strategy
	e.img = img
	return e
}

// Image returns the compiled image this engine was created from, or nil
// for an engine that compiled its own private network.
func (e *Engine) Image() *ProgramImage { return e.img }

// RunStartup executes the image's startup actions (one match cycle). It is
// a no-op for engines not created from an image or images without startup.
func (e *Engine) RunStartup() error {
	if e.img == nil || len(e.img.Startup) == 0 {
		return nil
	}
	deltas, err := e.execActions(e.img.Startup, nil, nil)
	if err != nil {
		return err
	}
	e.ApplyAndMatch(deltas)
	return nil
}
