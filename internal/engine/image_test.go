package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"soarpsme/internal/ops5"
)

const imageProg = `
(literalize block name color on)
(literalize hand state)
(startup (make block ^name b1 ^color blue)
         (make block ^name b2 ^color red)
         (make hand ^state free))
(p graspable
  (block ^name <b> ^color blue)
  -(block ^on <b>)
  (hand ^state free)
  -->
  (make goal ^obj <b>))
`

const imageChunk = `
(p chunk-red
  (block ^name <b> ^color red)
  -(block ^on <b>)
  (hand ^state free)
  -->
  (make goal ^obj <b>))`

// csFingerprint is a canonical string of the conflict set: production
// names with their instantiations' time tags, sorted.
func csFingerprint(e *Engine) string {
	insts := e.CS.All()
	lines := make([]string, 0, len(insts))
	for _, in := range insts {
		var b strings.Builder
		b.WriteString(in.Prod.Name)
		for _, w := range in.WMEs {
			fmt.Fprintf(&b, " %d", w.TimeTag)
		}
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestImageEquivalentToLoadProgram(t *testing.T) {
	solo := New(DefaultConfig())
	if err := solo.LoadProgram(imageProg); err != nil {
		t.Fatal(err)
	}

	img, err := CompileProgram(imageProg, DefaultConfig().Rete)
	if err != nil {
		t.Fatal(err)
	}
	if img.Productions() != 1 {
		t.Fatalf("image has %d productions, want 1", img.Productions())
	}
	e := NewFromImage(img, DefaultConfig())
	if e.CS.Len() != 0 {
		t.Fatalf("CS populated before startup: %d", e.CS.Len())
	}
	if err := e.RunStartup(); err != nil {
		t.Fatal(err)
	}
	if got, want := csFingerprint(e), csFingerprint(solo); got != want {
		t.Fatalf("image-backed session diverges from LoadProgram:\n got %q\nwant %q", got, want)
	}
}

func TestProgramHashSessionOptionsExcluded(t *testing.T) {
	base := DefaultConfig().Rete
	a := base
	a.Unlink = !base.Unlink
	if ProgramHash(imageProg, base) != ProgramHash(imageProg, a) {
		t.Fatal("Unlink (session-level) changed the image hash")
	}
	b := base
	b.ShareBeta = !base.ShareBeta
	if ProgramHash(imageProg, base) == ProgramHash(imageProg, b) {
		t.Fatal("ShareBeta (structural) did not change the image hash")
	}
	if ProgramHash(imageProg, base) == ProgramHash(imageProg+"\n(p x (hand) --> (make o))", base) {
		t.Fatal("source change did not change the image hash")
	}
}

// TestSharedImageConcurrentSessions is the topology-split race test: many
// sessions stamp out and run against ONE compiled image while one of them
// splices a chunk onto its private copy-on-write suffix. Run under -race
// this catches any cross-session write into the shared prefix; the
// explicit checks assert the prefix renders bit-identical before and
// after, the chunk stays invisible to sibling sessions, and every
// session's conflict set is byte-identical to a solo serial run.
func TestSharedImageConcurrentSessions(t *testing.T) {
	cfg := DefaultConfig()
	img, err := CompileProgram(imageProg, cfg.Rete)
	if err != nil {
		t.Fatal(err)
	}
	sharedBefore := NewFromImage(img, cfg).NW.FormatNetwork()
	sigBefore := img.Top.Signature()

	// Solo references, computed serially.
	solo := New(cfg)
	if err := solo.LoadProgram(imageProg); err != nil {
		t.Fatal(err)
	}
	wantBase := csFingerprint(solo)
	chunkAST, err := ops5.ParseProduction(imageChunk, solo.Tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.AddProductionRuntime(chunkAST); err != nil {
		t.Fatal(err)
	}
	wantChunked := csFingerprint(solo)

	const sessions = 8
	got := make([]string, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := NewFromImage(img, cfg)
			if err := e.RunStartup(); err != nil {
				errs[i] = err
				return
			}
			if i == 0 {
				// This session alone chunks, onto its own unshared suffix,
				// while the others are mid-create/match.
				ast, err := ops5.ParseProduction(imageChunk, e.Tab)
				if err != nil {
					errs[i] = err
					return
				}
				if _, err := e.AddProductionRuntime(ast); err != nil {
					errs[i] = err
					return
				}
			}
			got[i] = csFingerprint(e)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got[0] != wantChunked {
		t.Fatalf("chunking session diverges from solo chunked run:\n got %q\nwant %q", got[0], wantChunked)
	}
	for i := 1; i < sessions; i++ {
		if got[i] != wantBase {
			t.Fatalf("session %d diverges from solo run:\n got %q\nwant %q", i, got[i], wantBase)
		}
	}

	// The shared prefix must be untouched by the chunk splice: same
	// signature, and a fresh session renders the identical tree (including
	// reference counts — chunk reuse of shared nodes must not bump them).
	if sig := img.Top.Signature(); sig != sigBefore {
		t.Fatalf("shared topology signature changed: %v -> %v", sigBefore, sig)
	}
	if after := NewFromImage(img, cfg).NW.FormatNetwork(); after != sharedBefore {
		t.Fatalf("shared prefix changed after chunking:\nbefore:\n%s\nafter:\n%s", sharedBefore, after)
	}
}

func TestSuffixExcise(t *testing.T) {
	cfg := DefaultConfig()
	img, err := CompileProgram(imageProg, cfg.Rete)
	if err != nil {
		t.Fatal(err)
	}
	e := NewFromImage(img, cfg)
	if err := e.RunStartup(); err != nil {
		t.Fatal(err)
	}
	ast, err := ops5.ParseProduction(imageChunk, e.Tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddProductionRuntime(ast); err != nil {
		t.Fatal(err)
	}
	if len(e.NW.SuffixProductions()) != 1 {
		t.Fatalf("suffix productions = %d, want 1", len(e.NW.SuffixProductions()))
	}
	// Excising the private chunk works and restores the base conflict set.
	base := New(cfg)
	if err := base.LoadProgram(imageProg); err != nil {
		t.Fatal(err)
	}
	if err := e.ExciseProduction("chunk-red"); err != nil {
		t.Fatal(err)
	}
	if got, want := csFingerprint(e), csFingerprint(base); got != want {
		t.Fatalf("after suffix excise:\n got %q\nwant %q", got, want)
	}
	// Excising a production owned by the shared image must refuse: other
	// sessions depend on those nodes.
	if err := e.ExciseProduction("graspable"); err == nil {
		t.Fatal("excising a frozen base production succeeded")
	} else if !strings.Contains(err.Error(), "frozen") {
		t.Fatalf("unexpected excise error: %v", err)
	}
}

func TestImageCache(t *testing.T) {
	c := NewImageCache()
	opts := DefaultConfig().Rete

	img1, hit, err := c.Get(imageProg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Get reported a hit")
	}
	img2, hit, err := c.Get(imageProg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || img2 != img1 {
		t.Fatalf("second Get: hit=%v same=%v", hit, img2 == img1)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Live != 1 || st.Sessions != 2 {
		t.Fatalf("stats after two gets: %+v", st)
	}

	// Concurrent first-use of a new program compiles exactly once.
	prog2 := imageProg + "\n(p extra (hand ^state free) --> (make o))"
	const n = 8
	var wg sync.WaitGroup
	imgs := make([]*ProgramImage, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			imgs[i], _, _ = c.Get(prog2, opts)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if imgs[i] != imgs[0] || imgs[i] == nil {
			t.Fatalf("concurrent Gets returned different images")
		}
	}
	st = c.Stats()
	if st.Misses != 2 {
		t.Fatalf("concurrent first-use compiled %d times, want 1 (misses=%d)", st.Misses-1, st.Misses)
	}

	// Release keeps the image warm: refs drop, entry stays.
	c.Release(img1)
	c.Release(img2)
	st = c.Stats()
	if st.Live != 2 {
		t.Fatalf("released images were evicted: live=%d, want 2", st.Live)
	}
	if _, hit, _ := c.Get(imageProg, opts); !hit {
		t.Fatal("zero-ref image was not kept warm")
	}

	// Compile errors are returned but not cached.
	if _, _, err := c.Get("(p broken", opts); err == nil {
		t.Fatal("bad program compiled")
	}
	if st := c.Stats(); st.Live != 2 {
		t.Fatalf("failed compile left a cache entry: live=%d", st.Live)
	}
}
