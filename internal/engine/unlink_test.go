// Unlinking conformance: left/right unlinking is a pure scheduling filter,
// so the per-cycle conflict sets must be byte-identical with the filter on
// and off, for every workload, at every process count. The test lives in an
// external package because the Soar workloads import engine.
package engine_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"soarpsme/internal/engine"
	"soarpsme/internal/prun"
	"soarpsme/internal/soar"
	"soarpsme/internal/tasks/cypress"
	"soarpsme/internal/tasks/eightpuzzle"
	"soarpsme/internal/tasks/strips"
	"soarpsme/internal/wme"
)

// csFingerprint renders the live conflict set plus the WM size as a
// canonical string (production names and CE-ordered time tags, sorted).
func csFingerprint(e *engine.Engine) string {
	insts := e.CS.All()
	lines := make([]string, 0, len(insts))
	for _, in := range insts {
		var sb strings.Builder
		sb.WriteString(in.Prod.Name)
		sb.WriteByte('(')
		for i, w := range in.WMEs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", w.TimeTag)
		}
		sb.WriteByte(')')
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return fmt.Sprintf("wm=%d cs=%d %s", e.WM.Len(), len(insts), strings.Join(lines, " "))
}

// unlinkRun is one workload execution: per-cycle fingerprints plus the
// suppression count and the post-run audit result.
type unlinkRun struct {
	fps      []string
	suppress int64
	auditErr error
}

func runCypressUnlink(t *testing.T, procs int, unlink bool) unlinkRun {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Processes = procs
	cfg.Policy = prun.WorkStealing
	cfg.Rete.Unlink = unlink
	e := engine.New(cfg)
	sys := cypress.Generate(cypress.Params{Productions: 40, Cycles: 15, Seed: 9})
	if err := e.LoadProgram(sys.Source); err != nil {
		t.Fatalf("load: %v", err)
	}
	drv := cypress.NewDriver(sys, e.Tab, e.WM)
	var r unlinkRun
	for c := 0; c < sys.Params.Cycles; c++ {
		e.ApplyAndMatch(drv.Batch())
		r.fps = append(r.fps, csFingerprint(e))
	}
	r.suppress = e.NW.Stats.NullSuppressed.Load()
	r.auditErr = e.AuditInvariants()
	return r
}

// captureSoarTrajectory runs a Soar task serially once and records every
// applied wme-delta batch. Decisions depend on conflict-resolution order,
// which is schedule-sensitive, so on/off conformance is compared on a fixed
// WM trajectory: Soar productions only add wmes and startup wmes are
// permanent, so every Remove in the captured batches targets a wme an
// earlier captured batch added — the batches replay cleanly through a fresh
// agent of the same task.
func captureSoarTrajectory(t *testing.T, mk func() *soar.Task) [][]wme.Delta {
	t.Helper()
	cfg := soar.Config{Engine: engine.DefaultConfig(), MaxDecisions: 40}
	cfg.Engine.Rete.Unlink = false
	a, err := soar.New(cfg, mk())
	if err != nil {
		t.Fatalf("soar.New: %v", err)
	}
	var batches [][]wme.Delta
	a.Eng.OnApply = func(ds []wme.Delta) {
		batches = append(batches, append([]wme.Delta(nil), ds...))
	}
	if _, err := a.Run(); err != nil {
		t.Fatalf("capture run: %v", err)
	}
	return batches
}

// replaySoarUnlink pushes a captured trajectory through a fresh agent's
// engine (no decision loop) at the given configuration.
func replaySoarUnlink(t *testing.T, mk func() *soar.Task, batches [][]wme.Delta, procs int, unlink bool) unlinkRun {
	t.Helper()
	cfg := soar.Config{Engine: engine.DefaultConfig(), MaxDecisions: 40}
	cfg.Engine.Processes = procs
	cfg.Engine.Policy = prun.WorkStealing
	cfg.Engine.Rete.Unlink = unlink
	a, err := soar.New(cfg, mk())
	if err != nil {
		t.Fatalf("soar.New: %v", err)
	}
	var r unlinkRun
	for _, batch := range batches {
		a.Eng.ApplyAndMatch(batch)
		r.fps = append(r.fps, csFingerprint(a.Eng))
	}
	r.suppress = a.Eng.NW.Stats.NullSuppressed.Load()
	r.auditErr = a.Eng.AuditInvariants()
	return r
}

// TestUnlinkConformance compares every workload's per-cycle conflict-set
// fingerprints with unlinking on vs off across process counts: the filter
// must change how much work is scheduled (suppress > 0 when on) and nothing
// else. Runs under the CI -race leg.
func TestUnlinkConformance(t *testing.T) {
	procCounts := []int{1, 4, 13}
	workloads := []struct {
		name string
		run  func(t *testing.T, procs int, unlink bool) unlinkRun
	}{
		{"cypress", runCypressUnlink},
	}
	for _, soarWL := range []struct {
		name string
		mk   func() *soar.Task
	}{
		{"eight-puzzle", eightpuzzle.Default},
		{"strips", strips.Default},
	} {
		mk := soarWL.mk
		var (
			batches [][]wme.Delta
			once    sync.Once
		)
		workloads = append(workloads, struct {
			name string
			run  func(t *testing.T, procs int, unlink bool) unlinkRun
		}{soarWL.name, func(t *testing.T, procs int, unlink bool) unlinkRun {
			once.Do(func() { batches = captureSoarTrajectory(t, mk) })
			return replaySoarUnlink(t, mk, batches, procs, unlink)
		}})
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			t.Parallel()
			base := wl.run(t, 1, false)
			if base.auditErr != nil {
				t.Fatalf("baseline audit: %v", base.auditErr)
			}
			if base.suppress != 0 {
				t.Fatalf("unlink=off suppressed %d activations, want 0", base.suppress)
			}
			for _, procs := range procCounts {
				if testing.Short() && procs == 13 {
					continue
				}
				for _, unlink := range []bool{false, true} {
					procs, unlink := procs, unlink
					t.Run(fmt.Sprintf("p%d/unlink=%v", procs, unlink), func(t *testing.T) {
						r := wl.run(t, procs, unlink)
						if r.auditErr != nil {
							t.Fatalf("audit: %v", r.auditErr)
						}
						if len(r.fps) != len(base.fps) {
							t.Fatalf("cycle count %d != baseline %d", len(r.fps), len(base.fps))
						}
						for c := range r.fps {
							if r.fps[c] != base.fps[c] {
								t.Fatalf("cycle %d diverged from unlink=off serial baseline:\n got  %s\n want %s",
									c, r.fps[c], base.fps[c])
							}
						}
						if unlink && r.suppress == 0 {
							t.Fatalf("unlink=on suppressed no activations (filter inert)")
						}
						if !unlink && r.suppress != 0 {
							t.Fatalf("unlink=off suppressed %d activations", r.suppress)
						}
					})
				}
			}
		})
	}
}
