// Package engine assembles the match network, the parallel runtime and the
// conflict set into a production-system engine. It supports the OPS5
// match/select/fire loop (PSM-E's native mode) and exposes the primitives
// Soar's Decide module drives: batched wme changes, match-to-quiescence,
// fire-all instantiation draining, and run-time production addition with
// the state-update cycle (paper §5).
package engine

import (
	"fmt"
	"io"
	"time"

	"soarpsme/internal/conflict"
	"soarpsme/internal/fault"
	"soarpsme/internal/matchprof"
	"soarpsme/internal/obs"
	"soarpsme/internal/ops5"
	"soarpsme/internal/prun"
	"soarpsme/internal/rete"
	"soarpsme/internal/spin"
	"soarpsme/internal/value"
	"soarpsme/internal/wme"
)

// Config configures an engine.
type Config struct {
	Processes    int
	Policy       prun.Policy
	Rete         rete.Options
	CaptureTrace bool
	// MaxCycles bounds the OPS5 recognize-act loop (0 = 10000).
	MaxCycles int
	// Output receives (write ...) action output; nil discards it.
	Output io.Writer
	// Watch prints a run trace to Output: 1 = production firings,
	// 2 = firings plus working-memory changes (OPS5's watch levels).
	Watch int
	// Obs, when non-nil, enables the observability layer: per-cycle and
	// per-task metrics flow into its registry and spans into its tracer.
	// Nil (the default) makes every hook a no-op.
	Obs *obs.Observer
	// Fault, when non-nil, injects scheduled faults into the match workers
	// (the -fault-seed flag); failed cycles are recovered by the serial
	// fallback, so results are unchanged.
	Fault *fault.Injector
	// Deadline bounds each parallel match cycle's wall-clock time (the
	// -deadline flag); an expired cycle is poisoned and retried serially.
	// Zero disables the watchdog.
	Deadline time.Duration
	// Prof, when non-nil, enables match profiling: per-production cost
	// attribution, chain-depth/granularity histograms, and (unless the
	// options disable it) the anomaly flight recorder — which forces
	// runtime trace capture so each cycle's task DAG is retained in the
	// recorder's ring even when CaptureTrace is off. Per-cycle traces are
	// only kept on Engine.CycleStats when CaptureTrace itself is set.
	Prof *matchprof.Options
	// Budget, when non-nil, is a worker budget shared with other engines in
	// the same process: each match cycle acquires up to Processes slots from
	// it (at least one, so no engine starves) instead of unconditionally
	// spawning Processes workers. The serving layer hands every session the
	// same budget so S sessions share one pool rather than running
	// S×Processes workers.
	Budget *prun.Budget
}

// DefaultConfig returns a single-process, multi-queue, shared-network
// configuration.
func DefaultConfig() Config {
	return Config{Processes: 1, Policy: prun.MultiQueue, Rete: rete.DefaultOptions(), MaxCycles: 10000}
}

// Engine is a production-system engine instance.
type Engine struct {
	Tab *value.Table
	Reg *wme.Registry
	WM  *wme.Memory
	NW  *rete.Network
	RT  *prun.Runtime
	CS  *conflict.Set

	cfg      Config
	strategy conflict.Strategy
	halted   bool
	gensym   int64

	// Prof is the engine's match profiler (nil when cfg.Prof is nil). The
	// serving layer snapshots it for /debug/match and labels it with the
	// session ID.
	Prof *matchprof.Profile

	// CycleStats collects per-match-cycle statistics for the experiments.
	CycleStats []prun.CycleStats
	// UpdateStats collects the state-update cycles of run-time additions.
	UpdateStats []prun.CycleStats
	// Additions records every run-time production addition.
	Additions []*AddResult
	// Fired counts production firings.
	Fired int
	// BadDeltas counts wme deltas rejected by ApplyAndMatch (duplicate
	// inserts and removals of unknown wmes); the serving layer reports it
	// per session so clients see their own bad deltas, not just the
	// process-wide wm_bad_deltas_total metric.
	BadDeltas int
	// AfterCycle, when set, runs at the end of every ApplyAndMatch (the
	// experiment harness harvests per-cycle hash-line access counts here).
	AfterCycle func(cs *prun.CycleStats)
	// OnApply, when set, receives each cycle's applied wme deltas just
	// before the match runs (benchmarks capture replayable batches here).
	OnApply func(deltas []wme.Delta)

	// pendingExcise holds (excise ...) actions deferred to quiescence.
	pendingExcise []string

	// img is the shared compiled image this engine runs against (nil for
	// engines that compiled their own network).
	img *ProgramImage

	// Pre-resolved observability handles (all nil when cfg.Obs is nil).
	obs           *obs.Observer
	mCycles       *obs.Counter
	mWMEChanges   *obs.Counter
	mChunksAdded  *obs.Counter
	mQueueSpins   *obs.Counter
	mQueueAcqs    *obs.Counter
	mLineSpins    *obs.Counter
	mLineAcqs     *obs.Counter
	mBucketAccess *obs.Counter
	mCycleSecs    *obs.Histogram
	mSpliceSecs   *obs.Histogram
	mUpdateTasks  *obs.Histogram
	mCyclesFailed *obs.Counter
	mCyclesRecov  *obs.Counter
	mBadDeltas    *obs.Counter
	mNullSupp     *obs.Counter
	mAlphaHits    *obs.Counter
	mAlphaMisses  *obs.Counter
	lastQueue     spin.Counts
	lastLine      spin.Counts
	lastAccess    uint64
	lastNullSupp  uint64
	lastAlphaHit  uint64
	lastAlphaMiss uint64
}

// New creates an empty engine owning a private, freshly compiled network.
func New(cfg Config) *Engine {
	tab := value.NewTable()
	reg := wme.NewRegistry()
	cs := conflict.New()
	nw := rete.NewNetwork(tab, reg, cs, cfg.Rete)
	return assemble(tab, reg, nw, cs, cfg)
}

// assemble wires the runtime, profiler and observability around a network —
// shared by New (private network) and NewFromImage (shared topology).
func assemble(tab *value.Table, reg *wme.Registry, nw *rete.Network, cs *conflict.Set, cfg Config) *Engine {
	var prof *matchprof.Profile
	capture := cfg.CaptureTrace
	if cfg.Prof != nil {
		prof = matchprof.New(nw, *cfg.Prof, cfg.Obs)
		// The flight recorder needs each cycle's task DAG; trace capture is
		// cheap (one append per task into a reused buffer) next to match
		// itself.
		capture = capture || prof.FlightEnabled()
	}
	rt := prun.New(nw, prun.Config{
		Processes:    cfg.Processes,
		Policy:       cfg.Policy,
		CaptureTrace: capture,
		Fault:        cfg.Fault,
		Deadline:     cfg.Deadline,
		Budget:       cfg.Budget,
	})
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 10000
	}
	e := &Engine{Tab: tab, Reg: reg, WM: wme.NewMemory(), NW: nw, RT: rt, CS: cs, cfg: cfg, Prof: prof}
	if o := cfg.Obs; o != nil {
		e.obs = o
		e.mCycles = o.Counter("match_cycles_total")
		e.mWMEChanges = o.Counter("wme_changes_total")
		e.mChunksAdded = o.Counter("chunks_added_total")
		e.mQueueSpins = o.Counter("queue_lock_spins_total")
		e.mQueueAcqs = o.Counter("queue_lock_acquires_total")
		e.mLineSpins = o.Counter("hash_line_lock_spins_total")
		e.mLineAcqs = o.Counter("hash_line_lock_acquires_total")
		e.mBucketAccess = o.Counter("hash_bucket_accesses_total")
		e.mCycleSecs = o.Histogram("match_cycle_seconds")
		e.mSpliceSecs = o.Histogram("rete_add_splice_seconds")
		e.mUpdateTasks = o.Histogram("state_update_tasks", obs.ExpBuckets(1, 4, 10)...)
		e.mCyclesFailed = o.Counter("match_cycles_failed_total")
		e.mCyclesRecov = o.Counter("match_cycles_recovered_total")
		e.mBadDeltas = o.Counter("wm_bad_deltas_total")
		e.mNullSupp = o.Counter("null_activations_suppressed_total")
		e.mAlphaHits = o.Counter("alpha_dispatch_hits_total")
		e.mAlphaMisses = o.Counter("alpha_dispatch_misses_total")
		// The match workers render on tid lanes 1..P of trace pid 0.
		o.Tracer().SetProcessName(0, "soarpsme match pipeline")
		o.Tracer().SetThreadName(0, 0, "control")
		for w := 1; w <= cfg.Processes; w++ {
			o.Tracer().SetThreadName(0, w, fmt.Sprintf("match-%d", w))
		}
		rt.SetObserver(o.MatchHooks(0))
	}
	return e
}

// Obs returns the engine's observer (nil when observability is disabled);
// callers hand it to obs' nil-safe accessors.
func (e *Engine) Obs() *obs.Observer { return e.obs }

// flushContention folds the spin-lock and hash-bucket counter deltas since
// the previous flush into the registry — the paper's contention measures
// (Figures 6-2/6-3) as live counters instead of only end-of-run totals.
func (e *Engine) flushContention() {
	// delta clamps against external counter resets (Reset*Stats callers).
	delta := func(cur, last uint64) uint64 {
		if cur < last {
			return cur
		}
		return cur - last
	}
	qs, qa := e.RT.QueueLockStats()
	e.mQueueSpins.Add(delta(qs, e.lastQueue.Spins))
	e.mQueueAcqs.Add(delta(qa, e.lastQueue.Acquires))
	e.lastQueue = spin.Counts{Spins: qs, Acquires: qa}

	ls, la := e.NW.Mem.LockStats()
	e.mLineSpins.Add(delta(ls, e.lastLine.Spins))
	e.mLineAcqs.Add(delta(la, e.lastLine.Acquires))
	e.lastLine = spin.Counts{Spins: ls, Acquires: la}

	al, ar := e.NW.Mem.AccessTotals()
	e.mBucketAccess.Add(delta(al+ar, e.lastAccess))
	e.lastAccess = al + ar

	ns := uint64(e.NW.Stats.NullSuppressed.Load())
	e.mNullSupp.Add(delta(ns, e.lastNullSupp))
	e.lastNullSupp = ns
	ah := uint64(e.NW.Stats.AlphaHits.Load())
	e.mAlphaHits.Add(delta(ah, e.lastAlphaHit))
	e.lastAlphaHit = ah
	am := uint64(e.NW.Stats.AlphaMisses.Load())
	e.mAlphaMisses.Add(delta(am, e.lastAlphaMiss))
	e.lastAlphaMiss = am
}

// Halted reports whether a (halt) action has executed.
func (e *Engine) Halted() bool { return e.halted }

// Strategy returns the loaded conflict-resolution strategy.
func (e *Engine) Strategy() conflict.Strategy { return e.strategy }

// SetHalted forces the halt flag; snapshot restore uses it to reproduce a
// session that had executed (halt).
func (e *Engine) SetHalted(h bool) { e.halted = h }

// Gensym returns the (gensym) counter, for snapshot export.
func (e *Engine) Gensym() int64 { return e.gensym }

// SetGensym restores the (gensym) counter so a restored engine keeps
// generating fresh symbols.
func (e *Engine) SetGensym(n int64) { e.gensym = n }

// RebuildMatchState re-derives all match state — token memories, conflict
// set, unlink counters — from the current working memory by a serial
// replay through the network (the paper's run-time state-update machinery
// used as a migration primitive). Intended for a freshly loaded engine
// whose conflict set is empty; the journal is cleared afterwards so the
// rebuilt matches are not re-reported as fresh adds, and refraction is
// left for the caller to restore.
func (e *Engine) RebuildMatchState() prun.CycleStats {
	e.NW.ResetMatchState()
	cs := e.RT.ReplaySerial(e.WM.All())
	e.CS.ResetJournal()
	return cs
}

// LoadProgram parses and compiles an OPS5 source file: literalize
// declarations, productions (built into the network before any wme
// exists, so no state update is needed) and startup actions, which are
// applied and matched.
func (e *Engine) LoadProgram(src string) error {
	prog, err := ops5.Parse(src, e.Tab)
	if err != nil {
		return err
	}
	for _, lit := range prog.Literalize {
		e.Reg.Declare(lit.Class, lit.Attrs...)
	}
	e.strategy = conflict.ParseStrategy(prog.Strategy)
	for _, p := range prog.Productions {
		if _, _, err := e.NW.AddProduction(p); err != nil {
			return err
		}
	}
	if len(prog.Startup) > 0 {
		deltas, err := e.execActions(prog.Startup, nil, nil)
		if err != nil {
			return err
		}
		e.ApplyAndMatch(deltas)
	}
	return nil
}

// ApplyAndMatch applies a batch of wme changes to working memory and runs
// one parallel match cycle over them (match begins only after all changes
// are applied — the paper's measurement methodology, §6).
func (e *Engine) ApplyAndMatch(deltas []wme.Delta) prun.CycleStats {
	applied := deltas[:0:0]
	var badDelta error
	for _, d := range deltas {
		switch d.Op {
		case wme.Add:
			if err := e.WM.Insert(d.WME); err != nil {
				// A rejected delta (duplicate insert) is dropped from the
				// batch and surfaced as a cycle failure below: the serial
				// fallback re-derives match state from the WM that actually
				// resulted, so the engine degrades instead of crashing.
				if badDelta == nil {
					badDelta = err
				}
				e.BadDeltas++
				e.mBadDeltas.Inc()
				continue
			}
			applied = append(applied, d)
		case wme.Remove:
			if !e.WM.Delete(d.WME) {
				// Symmetric with the duplicate-insert path: removing a wme
				// that is not in working memory is a bad delta, not a no-op —
				// silently ignoring it would let a confused client's view of
				// WM drift from the engine's.
				if badDelta == nil {
					badDelta = fmt.Errorf("wme: remove of unknown wme %d", d.WME.ID)
				}
				e.BadDeltas++
				e.mBadDeltas.Inc()
				continue
			}
			applied = append(applied, d)
		}
	}
	if e.cfg.Watch >= 2 && e.cfg.Output != nil {
		for _, d := range applied {
			mark := "=>WM:"
			if d.Op == wme.Remove {
				mark = "<=WM:"
			}
			fmt.Fprintf(e.cfg.Output, ";; %s %d %s\n", mark, d.WME.TimeTag, d.WME.Format(e.Tab, e.Reg))
		}
	}
	if e.OnApply != nil {
		e.OnApply(applied)
	}
	var start time.Time
	if e.obs != nil {
		e.obs.Tracer().MarkCycle()
	}
	if e.obs != nil || e.Prof != nil {
		start = time.Now()
	}
	mark := e.CS.Mark()
	cs := e.RT.RunCycle(applied)
	if badDelta != nil && !cs.Failed {
		cs.Failed = true
		cs.Reason = "wme delta rejected: " + badDelta.Error()
	}
	if cs.Failed {
		cs = e.recoverCycle(mark, cs)
	}
	if e.obs != nil {
		d := time.Since(start)
		e.mCycles.Inc()
		e.mWMEChanges.Add(uint64(len(applied)))
		e.mCycleSecs.Observe(d.Seconds())
		e.obs.Tracer().Complete(0, 0, "match-cycle", "cycle", start, d, map[string]any{
			"tasks": cs.Tasks, "wme-changes": len(applied), "modeled-us": cs.TotalCost,
			"failed-pops": cs.FailedPops, "term-probes": cs.TermProbes, "steals": cs.Steals,
		})
		e.flushContention()
	}
	cs = e.endCycleProf(cs, start)
	e.CycleStats = append(e.CycleStats, cs)
	if e.AfterCycle != nil {
		e.AfterCycle(&e.CycleStats[len(e.CycleStats)-1])
	}
	return cs
}

// endCycleProf hands a finished cycle to the match profiler. The flight
// ring keeps the trace; unless the caller asked for traces on CycleStats
// the engine's own copy is dropped so long-running serving sessions don't
// accumulate every cycle's task DAG.
func (e *Engine) endCycleProf(cs prun.CycleStats, start time.Time) prun.CycleStats {
	if e.Prof == nil {
		return cs
	}
	e.Prof.EndCycle(matchprof.CycleEvent{
		Cycle: int64(len(e.CycleStats)),
		Dur:   time.Since(start),
		Stats: cs,
	})
	if !e.cfg.CaptureTrace {
		cs.Trace = nil
	}
	return cs
}

// recoverCycle is the degradation path: a poisoned parallel cycle's partial
// match state is discarded wholesale (fresh hash tables), the conflict set
// is rolled back to its pre-cycle journal mark, and the whole of working
// memory — which already reflects the cycle's wme changes — is replayed
// serially. The replay re-derives exactly the match state a fault-free
// cycle would have produced; EndRecovery then reconciles the conflict set
// so the next Drain reports only the cycle's true effect. The returned
// stats describe the replay, tagged Recovered with the original failure's
// Reason and Panics preserved.
func (e *Engine) recoverCycle(mark conflict.Mark, failed prun.CycleStats) prun.CycleStats {
	e.mCyclesFailed.Inc()
	var start time.Time
	if e.obs != nil {
		start = time.Now()
	}
	e.NW.ResetMatchState()
	rec := e.CS.BeginRecovery(mark)
	cs := e.RT.ReplaySerial(e.WM.All())
	e.CS.EndRecovery(rec)
	e.mCyclesRecov.Inc()
	if e.obs != nil {
		e.obs.Tracer().Complete(0, 0, "serial-fallback", "recover", start, time.Since(start),
			map[string]any{"reason": failed.Reason, "tasks": cs.Tasks})
	}
	cs.Failed = true
	cs.Reason = failed.Reason
	cs.Panics = failed.Panics
	return cs
}

// AuditInvariants runs the full Rete invariant audit: the quiescent-state
// checks of CheckInvariants, the network's memory-vs-WM cross-check
// (rete.Audit), and the P-node-tokens-vs-conflict-set size comparison.
// It must be called at quiescence; tests and the fault matrix run it after
// recovered cycles to prove the fallback restored a consistent state.
func (e *Engine) AuditInvariants() error {
	if err := e.CheckInvariants(); err != nil {
		return err
	}
	if errs := e.NW.Audit(e.WM); len(errs) > 0 {
		return fmt.Errorf("engine: audit found %d violation(s), first: %w", len(errs), errs[0])
	}
	if live, cs := e.NW.LivePTokens(), e.CS.Len(); live != cs {
		return fmt.Errorf("engine: %d live P-node tokens != %d conflict-set instantiations", live, cs)
	}
	return nil
}

// Step runs one recognize-act cycle: select a dominant instantiation, fire
// it, apply+match its wme changes, and run any excises it deferred. It
// reports whether a production fired — false means quiescence (empty
// conflict set) or a previously executed (halt). The serving layer uses it
// to run bounded cycle batches between checkpoints.
func (e *Engine) Step() (bool, error) {
	if e.halted {
		return false, nil
	}
	inst := e.CS.Select(e.strategy)
	if inst == nil {
		return false, nil
	}
	deltas, err := e.FireInstantiation(inst)
	if err != nil {
		return false, err
	}
	e.ApplyAndMatch(deltas)
	for _, name := range e.pendingExcise {
		if err := e.ExciseProduction(name); err != nil {
			return true, err
		}
	}
	e.pendingExcise = e.pendingExcise[:0]
	return true, nil
}

// RunOPS5 executes the recognize-act cycle until quiescence, halt, or the
// cycle bound. It returns the number of firings.
func (e *Engine) RunOPS5() (int, error) {
	fired := 0
	for i := 0; i < e.cfg.MaxCycles; i++ {
		ok, err := e.Step()
		if ok {
			fired++
		}
		if err != nil {
			return fired, err
		}
		if !ok {
			break
		}
	}
	return fired, nil
}

// FireInstantiation evaluates an instantiation's RHS, returning the wme
// changes it produces (and performing write/halt/bind side effects).
func (e *Engine) FireInstantiation(inst *conflict.Instantiation) ([]wme.Delta, error) {
	e.Fired++
	if e.cfg.Watch >= 1 && e.cfg.Output != nil {
		tags := make([]uint64, len(inst.WMEs))
		for i, w := range inst.WMEs {
			tags[i] = w.TimeTag
		}
		fmt.Fprintf(e.cfg.Output, ";; FIRE %s %v\n", inst.Prod.Name, tags)
	}
	return e.execActions(inst.Prod.AST.RHS, inst.Prod, inst.Tok)
}

// locals carries (bind ...) variables during one RHS evaluation.
type locals map[value.Sym]value.Value

// execActions evaluates a list of RHS actions. prod/tok are nil for
// startup actions.
func (e *Engine) execActions(acts []*ops5.Action, prod *rete.Production, tok *rete.Token) ([]wme.Delta, error) {
	var deltas []wme.Delta
	env := locals{}
	removed := map[uint64]bool{}
	for _, a := range acts {
		switch a.Kind {
		case ops5.ActMake:
			w, err := e.makeWME(a, prod, tok, env)
			if err != nil {
				return nil, err
			}
			deltas = append(deltas, wme.Delta{Op: wme.Add, WME: w})
		case ops5.ActRemove:
			w, err := e.actionTarget(a, prod, tok)
			if err != nil {
				return nil, err
			}
			if !removed[w.ID] {
				removed[w.ID] = true
				deltas = append(deltas, wme.Delta{Op: wme.Remove, WME: w})
			}
		case ops5.ActModify:
			old, err := e.actionTarget(a, prod, tok)
			if err != nil {
				return nil, err
			}
			fields := make([]value.Value, len(old.Fields))
			copy(fields, old.Fields)
			for _, set := range a.Sets {
				idx, ok := e.Reg.FieldIndex(old.Class, set.Attr, true)
				if !ok {
					return nil, fmt.Errorf("engine: modify: bad attribute")
				}
				for idx >= len(fields) {
					fields = append(fields, value.Nil)
				}
				v, err := e.evalExpr(set.Expr, prod, tok, env)
				if err != nil {
					return nil, err
				}
				fields[idx] = v
			}
			if !removed[old.ID] {
				removed[old.ID] = true
				deltas = append(deltas, wme.Delta{Op: wme.Remove, WME: old})
			}
			deltas = append(deltas, wme.Delta{Op: wme.Add, WME: e.WM.Make(old.Class, fields)})
		case ops5.ActWrite:
			if e.cfg.Output != nil {
				for i, arg := range a.Args {
					v, err := e.evalExpr(arg, prod, tok, env)
					if err != nil {
						return nil, err
					}
					if i > 0 {
						fmt.Fprint(e.cfg.Output, " ")
					}
					fmt.Fprint(e.cfg.Output, e.Tab.Format(v))
				}
				fmt.Fprintln(e.cfg.Output)
			}
		case ops5.ActHalt:
			e.halted = true
		case ops5.ActBind:
			v, err := e.evalExpr(a.Expr, prod, tok, env)
			if err != nil {
				return nil, err
			}
			env[a.Var] = v
		case ops5.ActExcise:
			// Network surgery must wait for quiescence; the excise runs
			// after this firing's match cycle completes.
			e.pendingExcise = append(e.pendingExcise, a.Name)
		}
	}
	return deltas, nil
}

// makeWME builds the wme for a make action.
func (e *Engine) makeWME(a *ops5.Action, prod *rete.Production, tok *rete.Token, env locals) (*wme.WME, error) {
	schema := e.Reg.Get(a.Class, true)
	fields := make([]value.Value, schema.Width())
	for _, set := range a.Sets {
		idx, ok := e.Reg.FieldIndex(a.Class, set.Attr, true)
		if !ok {
			return nil, fmt.Errorf("engine: make: bad attribute")
		}
		for idx >= len(fields) {
			fields = append(fields, value.Nil)
		}
		v, err := e.evalExpr(set.Expr, prod, tok, env)
		if err != nil {
			return nil, err
		}
		fields[idx] = v
	}
	return e.WM.Make(a.Class, fields), nil
}

// actionTarget resolves the wme a remove/modify refers to: a 1-based CE
// position or an element variable.
func (e *Engine) actionTarget(a *ops5.Action, prod *rete.Production, tok *rete.Token) (*wme.WME, error) {
	if prod == nil || tok == nil {
		return nil, fmt.Errorf("engine: remove/modify outside a firing")
	}
	var tag int
	if a.Elem != 0 {
		t, ok := prod.ElemCE[a.Elem]
		if !ok {
			return nil, fmt.Errorf("engine: %s: unbound element variable", prod.Name)
		}
		tag = t
	} else {
		tag = prod.ActionCE[a.CE-1]
	}
	w := tok.WMEAt(tag)
	if w == nil {
		return nil, fmt.Errorf("engine: %s: action target has no wme", prod.Name)
	}
	return w, nil
}

// evalExpr evaluates an RHS expression.
func (e *Engine) evalExpr(x *ops5.Expr, prod *rete.Production, tok *rete.Token, env locals) (value.Value, error) {
	switch x.Kind {
	case ops5.ExprConst:
		return x.Val, nil
	case ops5.ExprVar:
		if v, ok := env[x.Var]; ok {
			return v, nil
		}
		if prod != nil && tok != nil {
			if bd, ok := prod.Bindings[x.Var]; ok {
				w := tok.WMEAt(bd.CE)
				if w == nil {
					return value.Nil, fmt.Errorf("engine: unbound CE %d", bd.CE)
				}
				return w.Field(bd.Field), nil
			}
		}
		return value.Nil, fmt.Errorf("engine: unbound variable <%s>", e.Tab.Name(x.Var))
	case ops5.ExprGensym:
		e.gensym++
		return e.Tab.SymV(fmt.Sprintf("g%d", e.gensym)), nil
	case ops5.ExprCompute:
		l, err := e.evalExpr(x.L, prod, tok, env)
		if err != nil {
			return value.Nil, err
		}
		r, err := e.evalExpr(x.R, prod, tok, env)
		if err != nil {
			return value.Nil, err
		}
		return compute(x.Op, l, r)
	}
	return value.Nil, fmt.Errorf("engine: bad expression")
}

func compute(op byte, l, r value.Value) (value.Value, error) {
	if !l.Numeric() || !r.Numeric() {
		return value.Nil, fmt.Errorf("engine: compute on non-numeric values")
	}
	if l.Kind == value.KindInt && r.Kind == value.KindInt {
		a, b := l.Int(), r.Int()
		switch op {
		case '+':
			return value.IntVal(a + b), nil
		case '-':
			return value.IntVal(a - b), nil
		case '*':
			return value.IntVal(a * b), nil
		case '/':
			if b == 0 {
				return value.Nil, fmt.Errorf("engine: division by zero")
			}
			return value.IntVal(a / b), nil
		case '%':
			if b == 0 {
				return value.Nil, fmt.Errorf("engine: modulo by zero")
			}
			return value.IntVal(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case '+':
		return value.FloatVal(a + b), nil
	case '-':
		return value.FloatVal(a - b), nil
	case '*':
		return value.FloatVal(a * b), nil
	case '/':
		if b == 0 {
			return value.Nil, fmt.Errorf("engine: division by zero")
		}
		return value.FloatVal(a / b), nil
	case '%':
		return value.Nil, fmt.Errorf("engine: modulo on floats")
	}
	return value.Nil, fmt.Errorf("engine: bad operator %q", op)
}

// AddResult reports a run-time production addition (paper §5).
type AddResult struct {
	Prod *rete.Production
	Info *rete.AddInfo
	// CompileTime is the wall-clock code-generation/integration time.
	CompileTime time.Duration
	// Update is the state-update cycle's statistics (zero when WM empty).
	Update prun.CycleStats
}

// AddProductionRuntime adds a production while the system is running
// (chunking): it compiles the production into the shared network and then
// runs the §5.2 state-update cycle — replaying WM through the network with
// the update filter engaged and seeding the first new nodes from the last
// shared node's stored state — so the chunk is immediately available.
// The caller must be at quiescence.
func (e *Engine) AddProductionRuntime(ast *ops5.Production) (*AddResult, error) {
	start := time.Now()
	prod, info, err := e.NW.AddProduction(ast)
	if err != nil {
		return nil, err
	}
	res := &AddResult{Prod: prod, Info: info, CompileTime: time.Since(start)}
	if e.obs != nil {
		e.mChunksAdded.Inc()
		e.mSpliceSecs.Observe(info.SpliceTime.Seconds())
		e.obs.Tracer().Complete(0, 0, "add-production:"+prod.Name, "add", start, res.CompileTime,
			map[string]any{"new-nodes": len(info.NewBeta), "shared-2in": info.SharedTwoInput,
				"splice-us": float64(info.SpliceTime) / float64(time.Microsecond)})
	}
	if e.WM.Len() > 0 && len(info.NewBeta) > 0 {
		e.RT.SetUpdateFilter(info.FirstNewID)
		seeds := e.NW.SeedUpdateTasks(info)
		var ustart time.Time
		if e.obs != nil || e.Prof != nil {
			ustart = time.Now()
		}
		mark := e.CS.Mark()
		res.Update = e.RT.RunSeeded(seeds, e.WM.All())
		if res.Update.Failed {
			// A poisoned state-update cycle: clear the filter and rebuild
			// everything — old and new productions alike — serially.
			e.RT.SetUpdateFilter(0)
			res.Update = e.recoverCycle(mark, res.Update)
		}
		if e.obs != nil {
			e.mUpdateTasks.Observe(float64(res.Update.Tasks))
			e.obs.Tracer().Complete(0, 0, "state-update:"+prod.Name, "update", ustart, time.Since(ustart),
				map[string]any{"tasks": res.Update.Tasks, "seeds": len(seeds), "modeled-us": res.Update.TotalCost})
			e.flushContention()
		}
		e.RT.SetUpdateFilter(0)
		res.Update = e.endCycleProf(res.Update, ustart)
		e.UpdateStats = append(e.UpdateStats, res.Update)
	}
	e.Additions = append(e.Additions, res)
	return res, nil
}

// ExciseProduction removes a production at run time (OPS5's excise): its
// unshared nodes are detached, their match state purged, and its live
// instantiations retracted from the conflict set. The caller must be at
// quiescence.
func (e *Engine) ExciseProduction(name string) error {
	return e.NW.RemoveProduction(name)
}

// CheckInvariants verifies quiescent-state invariants (no outstanding
// tombstones); tests and the Soar engine call it between cycles.
func (e *Engine) CheckInvariants() error {
	if n := e.NW.Mem.Tombstones(); n != 0 {
		return fmt.Errorf("engine: %d outstanding tombstones at quiescence", n)
	}
	return nil
}
