package engine

import (
	"strings"
	"testing"
)

// The OPS5 semantic conformance battery: small programs with exact
// expected output, each isolating one language or matcher behaviour.
func TestOPS5Conformance(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // substrings that must appear in order
	}{
		{
			name: "negation-toggles",
			src: `
(literalize a v)
(literalize b v)
(startup (make a ^v 1))
(p no-b (a ^v <v>) -(b ^v <v>) --> (write no-b-yet) (make b ^v <v>))
(p has-b (a ^v <v>) (b ^v <v>) --> (write b-appeared) (halt))
`,
			want: []string{"no-b-yet", "b-appeared"},
		},
		{
			name: "disjunction-and-conjunction",
			src: `
(literalize sensor kind level)
(startup (make sensor ^kind heat ^level 7)
         (make sensor ^kind smoke ^level 2)
         (make sensor ^kind gas ^level 9))
(p alarm
  { <s> (sensor ^kind { << heat gas >> <k> } ^level { > 5 <= 9 }) }
  -->
  (write alarm <k>)
  (remove <s>))
`,
			want: []string{"alarm gas", "alarm heat"},
		},
		{
			name: "same-type-predicate",
			src: `
(literalize pairx a b)
(startup (make pairx ^a 3 ^b 4) (make pairx ^a 3 ^b sym))
(p same-type { <p> (pairx ^a <x> ^b <=> <x>) } --> (write both-numeric) (remove <p>))
`,
			want: []string{"both-numeric"},
		},
		{
			name: "cross-ce-inequality",
			src: `
(literalize person name team)
(startup (make person ^name ann ^team red)
         (make person ^name bob ^team red)
         (make person ^name cid ^team blue))
(p rivals
  (person ^name ann ^team <t>)
  { <o> (person ^team <> <t> ^name <n>) }
  -->
  (write rival <n>)
  (remove <o>))
`,
			want: []string{"rival cid"},
		},
		{
			name: "ncc-conjunction-vs-single",
			src: `
(literalize g id)
(literalize x of)
(literalize y of)
(startup (make g ^id g1) (make x ^of g1))
(p clear-ncc
  (g ^id <i>)
  -{ (x ^of <i>) (y ^of <i>) }
  -->
  (write conjunction-incomplete)
  (make y ^of <i>))
(p blocked-now
  (g ^id <i>) (x ^of <i>) (y ^of <i>)
  -->
  (write both-present)
  (halt))
`,
			want: []string{"conjunction-incomplete", "both-present"},
		},
		{
			name: "modify-chain",
			src: `
(literalize acct bal)
(startup (make acct ^bal 100))
(p fee { <a> (acct ^bal { <b> > 10 }) } --> (modify <a> ^bal (compute <b> - 30)))
(p broke (acct ^bal { <b> <= 10 }) --> (write left <b>) (halt))
`,
			want: []string{"left 10"},
		},
		{
			name: "lex-recency-chain",
			src: `
(literalize step n)
(startup (make step ^n 1))
(p grow { <s> (step ^n { <n> < 4 }) } --> (write at <n>) (modify <s> ^n (compute <n> + 1)))
(p end (step ^n 4) --> (write end) (halt))
`,
			want: []string{"at 1", "at 2", "at 3", "end"},
		},
		{
			name: "intra-ce-variable",
			src: `
(literalize edge from to)
(startup (make edge ^from a ^to a) (make edge ^from a ^to b))
(p loop { <e> (edge ^from <x> ^to <x>) } --> (write self-loop <x>) (remove <e>) (halt))
`,
			want: []string{"self-loop a"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, procs := range []int{1, 4} {
				cfg := DefaultConfig()
				cfg.Processes = procs
				_, out := run(t, tc.src, cfg)
				pos := -1
				for _, w := range tc.want {
					i := strings.Index(out, w)
					if i < 0 {
						t.Fatalf("procs=%d: missing %q in output:\n%s", procs, w, out)
					}
					if i < pos {
						t.Fatalf("procs=%d: %q out of order in:\n%s", procs, w, out)
					}
					pos = i
				}
			}
		})
	}
}
