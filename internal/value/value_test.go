package value

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternIdempotent(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("block")
	b := tab.Intern("block")
	if a != b {
		t.Fatalf("Intern not idempotent: %d vs %d", a, b)
	}
	c := tab.Intern("hand")
	if c == a {
		t.Fatalf("distinct names interned to same Sym")
	}
	if got := tab.Name(a); got != "block" {
		t.Fatalf("Name(a) = %q, want block", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestLookup(t *testing.T) {
	tab := NewTable()
	if _, ok := tab.Lookup("missing"); ok {
		t.Fatalf("Lookup found missing symbol")
	}
	s := tab.Intern("x")
	got, ok := tab.Lookup("x")
	if !ok || got != s {
		t.Fatalf("Lookup(x) = %v,%v want %v,true", got, ok, s)
	}
}

func TestNameUnknown(t *testing.T) {
	tab := NewTable()
	if tab.Name(NilSym) != "" {
		t.Fatalf("Name(NilSym) nonempty")
	}
	if tab.Name(999) != "" {
		t.Fatalf("Name(unknown) nonempty")
	}
}

func TestInternConcurrent(t *testing.T) {
	tab := NewTable()
	const G = 16
	var wg sync.WaitGroup
	syms := make([][]Sym, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Sym, 100)
			for i := range out {
				out[i] = tab.Intern(fmt.Sprintf("s%d", i))
			}
			syms[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < G; g++ {
		for i := range syms[g] {
			if syms[g][i] != syms[0][i] {
				t.Fatalf("goroutine %d interned s%d differently", g, i)
			}
		}
	}
	if tab.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tab.Len())
	}
}

func TestValueEqualMixedNumeric(t *testing.T) {
	if !IntVal(3).Equal(FloatVal(3.0)) {
		t.Fatalf("3 should equal 3.0")
	}
	if IntVal(3).Equal(FloatVal(3.5)) {
		t.Fatalf("3 should not equal 3.5")
	}
	if IntVal(3).Equal(SymVal(3)) {
		t.Fatalf("int 3 should not equal sym#3")
	}
	if !Nil.Equal(Nil) {
		t.Fatalf("nil should equal nil")
	}
}

func TestValueAccessors(t *testing.T) {
	if IntVal(-7).Int() != -7 {
		t.Fatalf("Int roundtrip failed")
	}
	if FloatVal(2.5).Float() != 2.5 {
		t.Fatalf("Float roundtrip failed")
	}
	if !Nil.IsNil() || IntVal(0).IsNil() {
		t.Fatalf("IsNil wrong")
	}
	if IntVal(2).AsFloat() != 2 || FloatVal(2.5).AsFloat() != 2.5 || SymVal(1).AsFloat() != 0 {
		t.Fatalf("AsFloat wrong")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{IntVal(1), IntVal(2), -1, true},
		{IntVal(2), IntVal(2), 0, true},
		{IntVal(3), IntVal(2), 1, true},
		{FloatVal(1.5), IntVal(2), -1, true},
		{IntVal(2), FloatVal(1.5), 1, true},
		{FloatVal(2), FloatVal(2), 0, true},
		{SymVal(1), IntVal(2), 0, false},
		{IntVal(2), Nil, 0, false},
	}
	for i, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if cmp != c.cmp || ok != c.ok {
			t.Errorf("case %d: Compare = %d,%v want %d,%v", i, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestPredApply(t *testing.T) {
	cases := []struct {
		p    Pred
		a, b Value
		want bool
	}{
		{PredEq, IntVal(1), IntVal(1), true},
		{PredEq, SymVal(5), SymVal(5), true},
		{PredEq, SymVal(5), SymVal(6), false},
		{PredNe, SymVal(5), SymVal(6), true},
		{PredNe, IntVal(1), FloatVal(1), false},
		{PredLt, IntVal(1), IntVal(2), true},
		{PredLt, IntVal(2), IntVal(1), false},
		{PredLt, SymVal(1), IntVal(2), false}, // relational on symbol fails
		{PredLe, IntVal(2), IntVal(2), true},
		{PredGt, FloatVal(2.5), IntVal(2), true},
		{PredGe, IntVal(2), FloatVal(2.5), false},
		{PredSameType, IntVal(1), FloatVal(9), true},
		{PredSameType, IntVal(1), SymVal(9), false},
		{PredSameType, SymVal(1), SymVal(9), true},
		{PredSameType, Nil, SymVal(9), false},
	}
	for i, c := range cases {
		if got := c.p.Apply(c.a, c.b); got != c.want {
			t.Errorf("case %d: %v %v %v = %v, want %v", i, c.a, c.p, c.b, got, c.want)
		}
	}
}

func TestParsePred(t *testing.T) {
	for _, s := range []string{"=", "<>", "<", "<=", ">", ">=", "<=>"} {
		p, ok := ParsePred(s)
		if !ok {
			t.Fatalf("ParsePred(%q) failed", s)
		}
		if p.String() != s {
			t.Fatalf("ParsePred(%q).String() = %q", s, p.String())
		}
	}
	if _, ok := ParsePred("~"); ok {
		t.Fatalf("ParsePred accepted garbage")
	}
}

func TestPredStringUnknown(t *testing.T) {
	if Pred(99).String() == "" {
		t.Fatalf("unknown pred should still render")
	}
	if Kind(99).String() == "" {
		t.Fatalf("unknown kind should still render")
	}
}

// Property: Equal is reflexive and symmetric over generated values.
func TestEqualPropertyReflexiveSymmetric(t *testing.T) {
	gen := func(k uint8, n int64, f float64) bool {
		var v Value
		switch k % 4 {
		case 0:
			v = Nil
		case 1:
			v = SymVal(Sym(n&0xffff) + 1)
		case 2:
			v = IntVal(n)
		case 3:
			v = FloatVal(f)
		}
		w := v // copy
		return v.Equal(v) && v.Equal(w) == w.Equal(v)
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hash is deterministic and int/float/sym payload spaces do not
// collide for identical raw payloads.
func TestHashProperty(t *testing.T) {
	f := func(n int64) bool {
		a, b := IntVal(n), IntVal(n)
		if a.Hash() != b.Hash() {
			return false
		}
		// Same bit payload in different kinds must hash differently.
		return IntVal(int64(uint32(n))).Hash() != SymVal(Sym(uint32(n))).Hash() || uint32(n) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare agrees with float ordering for ints.
func TestComparePropertyInts(t *testing.T) {
	f := func(a, b int32) bool {
		cmp, ok := IntVal(int64(a)).Compare(IntVal(int64(b)))
		if !ok {
			return false
		}
		switch {
		case a < b:
			return cmp == -1
		case a > b:
			return cmp == 1
		}
		return cmp == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	tab := NewTable()
	v := tab.SymV("blue")
	if got := tab.Format(v); got != "blue" {
		t.Fatalf("Format = %q", got)
	}
	if got := tab.Format(IntVal(42)); got != "42" {
		t.Fatalf("Format(42) = %q", got)
	}
	if Nil.String() != "nil" {
		t.Fatalf("Nil.String = %q", Nil.String())
	}
	if FloatVal(1.5).String() != "1.5" {
		t.Fatalf("Float String = %q", FloatVal(1.5).String())
	}
}

func TestFloatNormalization(t *testing.T) {
	nz := FloatVal(math_Copysign0())
	pz := FloatVal(0)
	if nz != pz {
		t.Fatalf("-0 and +0 should be identical Values")
	}
}

func math_Copysign0() float64 {
	z := 0.0
	return -z
}
