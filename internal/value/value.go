// Package value provides the primitive value model shared by the whole
// system: interned symbols, typed constants (symbol, integer, float) and the
// OPS5 predicate tests that compare them.
//
// Values are small (two words) and comparable with ==, which lets working
// memory elements, Rete tokens and hash-table keys embed them directly.
package value

import (
	"fmt"
	"strconv"
	"sync"
)

// Sym is an interned symbol identifier. Symbols are interned by a Table;
// two symbols from the same Table are equal iff their Sym values are equal.
// The zero Sym is never produced by interning and acts as "no symbol".
type Sym uint32

// NilSym is the invalid/absent symbol.
const NilSym Sym = 0

// Kind discriminates the runtime type of a Value.
type Kind uint8

// The value kinds. KindNil is the zero Value: absent / unbound.
const (
	KindNil Kind = iota
	KindSym
	KindInt
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindSym:
		return "sym"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a typed constant. The zero Value is "nil": no value.
//
// Exactly one of Sym / bits is meaningful, selected by Kind. Values are
// comparable with == because float payloads are stored as IEEE-754 bits.
type Value struct {
	Kind Kind
	Sym  Sym    // valid when Kind == KindSym
	bits uint64 // int64 or float64 bits otherwise
}

// Nil is the absent value.
var Nil = Value{}

// SymVal wraps an interned symbol as a Value.
func SymVal(s Sym) Value { return Value{Kind: KindSym, Sym: s} }

// IntVal wraps an integer as a Value.
func IntVal(i int64) Value { return Value{Kind: KindInt, bits: uint64(i)} }

// FloatVal wraps a float as a Value.
func FloatVal(f float64) Value {
	return Value{Kind: KindFloat, bits: floatBits(f)}
}

// Int returns the integer payload; only meaningful when Kind == KindInt.
func (v Value) Int() int64 { return int64(v.bits) }

// Float returns the float payload; only meaningful when Kind == KindFloat.
func (v Value) Float() float64 { return floatFromBits(v.bits) }

// IsNil reports whether v is the absent value.
func (v Value) IsNil() bool { return v.Kind == KindNil }

// Numeric reports whether v is an int or a float.
func (v Value) Numeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat converts a numeric value to float64 (0 for non-numerics).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.Int())
	case KindFloat:
		return v.Float()
	}
	return 0
}

// Hash returns a well-mixed 64-bit hash of the value, suitable for the Rete
// token hash tables. Numerically equal int/float values hash differently;
// the matcher compares ints and floats by numeric value only through
// predicate tests, never through hashing, so this is safe.
func (v Value) Hash() uint64 {
	var h uint64
	switch v.Kind {
	case KindNil:
		return 0x9e3779b97f4a7c15
	case KindSym:
		h = uint64(v.Sym) | 1<<40
	case KindInt:
		h = v.bits ^ 2<<40
	case KindFloat:
		h = v.bits ^ 3<<40
	}
	// SplitMix64 finalizer: cheap and statistically strong.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Equal reports OPS5 equality: identical symbols, or numerically equal
// numbers (3 = 3.0 holds in OPS5).
func (v Value) Equal(o Value) bool {
	if v.Kind == o.Kind {
		return v == o
	}
	if v.Numeric() && o.Numeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare returns -1, 0, +1 for numeric ordering. ok is false when either
// operand is not numeric (OPS5 relational predicates fail on non-numbers;
// symbols are compared for identity only).
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if !v.Numeric() || !o.Numeric() {
		return 0, false
	}
	if v.Kind == KindInt && o.Kind == KindInt {
		a, b := v.Int(), o.Int()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1, true
	case a > b:
		return 1, true
	}
	return 0, true
}

// String renders the value using the table-less fallback form; use
// Table.Format for symbol names.
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindSym:
		return fmt.Sprintf("sym#%d", v.Sym)
	case KindInt:
		return strconv.FormatInt(v.Int(), 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	}
	return "?"
}

// Table interns symbol names. It is safe for concurrent use; interning is
// write-locked, lookups of existing symbols take only a read lock.
type Table struct {
	mu    sync.RWMutex
	names []string       // index = Sym; names[0] unused
	ids   map[string]Sym // name -> Sym
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{names: make([]string, 1, 256), ids: make(map[string]Sym, 256)}
}

// Intern returns the symbol for name, creating it if necessary.
func (t *Table) Intern(name string) Sym {
	t.mu.RLock()
	s, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.ids[name]; ok {
		return s
	}
	s = Sym(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = s
	return s
}

// Lookup returns the symbol for name if it was interned.
func (t *Table) Lookup(name string) (Sym, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := t.ids[name]
	return s, ok
}

// Name returns the string form of s ("" for NilSym or unknown symbols).
func (t *Table) Name(s Sym) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(s) < len(t.names) {
		return t.names[s]
	}
	return ""
}

// Len returns the number of interned symbols.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names) - 1
}

// SymV interns name and returns it wrapped as a Value.
func (t *Table) SymV(name string) Value { return SymVal(t.Intern(name)) }

// Format renders v with symbol names resolved through the table.
func (t *Table) Format(v Value) string {
	if v.Kind == KindSym {
		if n := t.Name(v.Sym); n != "" {
			return n
		}
	}
	return v.String()
}
