package value

import (
	"fmt"
	"math"
)

// Pred is an OPS5 attribute-test predicate.
type Pred uint8

// The OPS5 predicates. PredEq is the default (written as a bare constant or
// variable in a condition element); PredSameType is OPS5's "<=>".
const (
	PredEq       Pred = iota // =
	PredNe                   // <>
	PredLt                   // <
	PredLe                   // <=
	PredGt                   // >
	PredGe                   // >=
	PredSameType             // <=>
)

func (p Pred) String() string {
	switch p {
	case PredEq:
		return "="
	case PredNe:
		return "<>"
	case PredLt:
		return "<"
	case PredLe:
		return "<="
	case PredGt:
		return ">"
	case PredGe:
		return ">="
	case PredSameType:
		return "<=>"
	}
	return fmt.Sprintf("Pred(%d)", uint8(p))
}

// Apply evaluates "a p b" with OPS5 semantics: equality/inequality are
// defined for all values; relational predicates hold only between numbers;
// <=> holds when both operands have the same type class (number vs symbol).
func (p Pred) Apply(a, b Value) bool {
	switch p {
	case PredEq:
		return a.Equal(b)
	case PredNe:
		return !a.Equal(b)
	case PredSameType:
		return a.Numeric() == b.Numeric() && a.Kind != KindNil && b.Kind != KindNil
	}
	cmp, ok := a.Compare(b)
	if !ok {
		return false
	}
	switch p {
	case PredLt:
		return cmp < 0
	case PredLe:
		return cmp <= 0
	case PredGt:
		return cmp > 0
	case PredGe:
		return cmp >= 0
	}
	return false
}

// ParsePred recognizes the textual form of a predicate.
func ParsePred(s string) (Pred, bool) {
	switch s {
	case "=":
		return PredEq, true
	case "<>":
		return PredNe, true
	case "<":
		return PredLt, true
	case "<=":
		return PredLe, true
	case ">":
		return PredGt, true
	case ">=":
		return PredGe, true
	case "<=>":
		return PredSameType, true
	}
	return PredEq, false
}

func floatBits(f float64) uint64 {
	// Normalize NaNs and -0 so Value remains ==-comparable in maps.
	if f != f {
		return 0x7ff8000000000001
	}
	if f == 0 {
		f = 0
	}
	return math.Float64bits(f)
}

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
