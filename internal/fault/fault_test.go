package fault

import (
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if a := in.Visit(SiteExec); a.Kind != KindNone {
		t.Fatalf("nil injector returned %v", a.Kind)
	}
	if in.Fired() != 0 || in.Visits(SiteExec) != 0 {
		t.Fatalf("nil injector counted something")
	}
	if s := in.String(); s != "fault: none" {
		t.Fatalf("nil String = %q", s)
	}
}

func TestPlanTargetsExactVisits(t *testing.T) {
	in := Plan(
		Fault{Site: SiteExec, Kind: KindPanic, Visit: 3},
		Fault{Site: SiteExec, Kind: KindStall, Visit: 5, Delay: time.Millisecond},
		Fault{Site: SiteSteal, Kind: KindDropSteal, Visit: 0},
	)
	var got []Kind
	for i := 0; i < 8; i++ {
		got = append(got, in.Visit(SiteExec).Kind)
	}
	for i, want := range []Kind{KindNone, KindNone, KindNone, KindPanic, KindNone, KindStall, KindNone, KindNone} {
		if got[i] != want {
			t.Fatalf("exec visit %d = %v, want %v", i, got[i], want)
		}
	}
	if a := in.Visit(SiteSteal); a.Kind != KindDropSteal {
		t.Fatalf("steal visit 0 = %v, want drop", a.Kind)
	}
	if in.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", in.Fired())
	}
	if in.Visits(SiteExec) != 8 || in.Visits(SiteSteal) != 1 {
		t.Fatalf("Visits = %d/%d", in.Visits(SiteExec), in.Visits(SiteSteal))
	}
}

func TestPlanStallCarriesDelay(t *testing.T) {
	in := Plan(Fault{Site: SiteExec, Kind: KindStall, Visit: 0, Delay: 7 * time.Millisecond})
	if a := in.Visit(SiteExec); a.Kind != KindStall || a.Delay != 7*time.Millisecond {
		t.Fatalf("stall action = %+v", a)
	}
}

// Seeded schedules must be a pure function of (seed, site, visit): two
// injectors with the same seed agree on every visit; a different seed
// produces a different schedule.
func TestSeededDeterminism(t *testing.T) {
	const n = 100000
	r := Rates{Panic: 60, Stall: 40, DropSteal: 2000, StallFor: time.Millisecond}
	a, b := Seeded(42, r), Seeded(42, r)
	fired := 0
	for i := 0; i < n; i++ {
		x, y := a.Visit(SiteExec), b.Visit(SiteExec)
		if x != y {
			t.Fatalf("visit %d: %v != %v for same seed", i, x, y)
		}
		if x.Kind != KindNone {
			fired++
			if x.Kind == KindStall && x.Delay != time.Millisecond {
				t.Fatalf("stall without configured delay: %+v", x)
			}
			if x.Kind == KindDropSteal {
				t.Fatalf("drop-steal injected at exec site")
			}
		}
	}
	if fired == 0 {
		t.Fatalf("seeded schedule never fired in %d visits", n)
	}
	// ~100/65536 per visit: expect on the order of 150; allow a wide band.
	if fired > n/100 {
		t.Fatalf("seeded schedule fired %d/%d times — far above configured rates", fired, n)
	}
	c, d := Seeded(43, r), Seeded(42, r)
	diff := false
	for i := 0; i < n; i++ {
		if c.Visit(SiteSteal) != d.Visit(SiteSteal) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("seeds 42 and 43 produced identical steal schedules over %d visits", n)
	}
}

func TestSeededSiteSeparation(t *testing.T) {
	in := Seeded(7, Rates{DropSteal: 65536}) // every steal drops, exec never fires
	for i := 0; i < 100; i++ {
		if a := in.Visit(SiteExec); a.Kind != KindNone {
			t.Fatalf("exec visit %d fired %v with only steal rates set", i, a.Kind)
		}
		if a := in.Visit(SiteSteal); a.Kind != KindDropSteal {
			t.Fatalf("steal visit %d = %v, want drop", i, a.Kind)
		}
	}
}

func TestStringSummaries(t *testing.T) {
	if s := Plan().String(); s != "fault: empty" {
		t.Fatalf("empty plan String = %q", s)
	}
	in := Plan(Fault{Site: SiteExec, Kind: KindPanic, Visit: 2})
	if s := in.String(); s == "" || s == "fault: empty" {
		t.Fatalf("plan String = %q", s)
	}
	if s := Seeded(1, DefaultRates()).String(); s == "fault: empty" {
		t.Fatalf("seeded String = %q", s)
	}
}
