// Fault matrix: every fault schedule crossed with every scheduling policy
// and several process counts must leave the engine in a state byte-identical
// to a fault-free serial run — the serial-fallback guarantee. The test is in
// an external package because it drives the whole engine (which itself
// imports fault).
package fault_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"soarpsme/internal/engine"
	"soarpsme/internal/fault"
	"soarpsme/internal/prun"
	"soarpsme/internal/tasks/cypress"
)

// matrixParams is kept small: the matrix multiplies it by 5 schedules x 3
// policies x 3 process counts, and CI runs the whole thing under -race.
var matrixParams = cypress.Params{Productions: 60, Cycles: 20, Seed: 5}

// run drives the cypress workload for one configuration and returns the
// per-cycle conflict-set fingerprints plus the engine for post-run audits.
func run(t *testing.T, procs int, pol prun.Policy, in *fault.Injector, deadline time.Duration) ([]string, *engine.Engine) {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Processes = procs
	cfg.Policy = pol
	cfg.Fault = in
	cfg.Deadline = deadline
	e := engine.New(cfg)
	sys := cypress.Generate(matrixParams)
	if err := e.LoadProgram(sys.Source); err != nil {
		t.Fatalf("load: %v", err)
	}
	drv := cypress.NewDriver(sys, e.Tab, e.WM)
	fps := make([]string, 0, sys.Params.Cycles)
	for c := 0; c < sys.Params.Cycles; c++ {
		e.ApplyAndMatch(drv.Batch())
		fps = append(fps, fingerprint(e))
	}
	return fps, e
}

// fingerprint renders the live conflict set (plus the working-memory size)
// as a canonical string: production name and CE-ordered wme time tags per
// instantiation, sorted. Pointer identities are deliberately excluded so
// fingerprints compare across engines.
func fingerprint(e *engine.Engine) string {
	insts := e.CS.All()
	lines := make([]string, 0, len(insts))
	for _, in := range insts {
		var sb strings.Builder
		sb.WriteString(in.Prod.Name)
		sb.WriteByte('(')
		for i, w := range in.WMEs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", w.TimeTag)
		}
		sb.WriteByte(')')
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return fmt.Sprintf("wm=%d cs=%d %s", e.WM.Len(), len(insts), strings.Join(lines, " "))
}

func TestFaultMatrix(t *testing.T) {
	schedules := []struct {
		name         string
		mk           func() *fault.Injector // fresh injector per run (visit counters are stateful)
		deadline     time.Duration
		wantRecovery bool // schedule must fail at least one cycle, and every failure must recover
	}{
		{name: "none", mk: func() *fault.Injector { return nil }},
		{
			name: "planned-panics",
			mk: func() *fault.Injector {
				return fault.Plan(
					fault.Fault{Site: fault.SiteExec, Kind: fault.KindPanic, Visit: 3},
					fault.Fault{Site: fault.SiteExec, Kind: fault.KindPanic, Visit: 41},
					fault.Fault{Site: fault.SiteExec, Kind: fault.KindPanic, Visit: 97},
				)
			},
			wantRecovery: true,
		},
		{
			name: "stall-watchdog",
			mk: func() *fault.Injector {
				return fault.Plan(fault.Fault{Site: fault.SiteExec, Kind: fault.KindStall, Visit: 5, Delay: 30 * time.Second})
			},
			deadline:     50 * time.Millisecond,
			wantRecovery: true,
		},
		{
			name: "seeded-drops",
			mk:   func() *fault.Injector { return fault.Seeded(7, fault.Rates{DropSteal: 20000}) },
			// Dropped steals perturb the schedule but never fail a cycle.
		},
		{
			name: "seeded-panics",
			// ~9% per exec visit: unlinking suppresses most null activations,
			// leaving this workload only ~40 exec visits per run, so the rate
			// must be hot enough to fire at least once within that budget.
			mk:           func() *fault.Injector { return fault.Seeded(11, fault.Rates{Panic: 6000}) },
			wantRecovery: true,
		},
	}
	policies := []prun.Policy{prun.SingleQueue, prun.MultiQueue, prun.WorkStealing}
	procCounts := []int{1, 4, 13}

	baseline, be := run(t, 1, prun.SingleQueue, nil, 0)
	if err := be.AuditInvariants(); err != nil {
		t.Fatalf("baseline audit: %v", err)
	}

	for _, sched := range schedules {
		for _, pol := range policies {
			for _, procs := range procCounts {
				if testing.Short() && procs == 13 {
					continue
				}
				sched, pol, procs := sched, pol, procs
				t.Run(fmt.Sprintf("%s/%v/p%d", sched.name, pol, procs), func(t *testing.T) {
					t.Parallel()
					in := sched.mk()
					fps, e := run(t, procs, pol, in, sched.deadline)
					for c := range fps {
						if fps[c] != baseline[c] {
							t.Fatalf("cycle %d diverged from fault-free serial baseline:\n got  %s\n want %s",
								c, fps[c], baseline[c])
						}
					}
					if err := e.AuditInvariants(); err != nil {
						t.Fatalf("post-run audit: %v", err)
					}
					failed, recovered := 0, 0
					for _, cs := range e.CycleStats {
						if cs.Failed {
							failed++
							if !cs.Recovered {
								t.Fatalf("cycle failed (%s) without recovery", cs.Reason)
							}
							recovered++
						}
					}
					if sched.wantRecovery && failed == 0 {
						t.Fatalf("schedule injected no cycle failure (injector fired %d faults over %d exec visits)",
							in.Fired(), in.Visits(fault.SiteExec))
					}
					if sched.name == "none" && failed != 0 {
						t.Fatalf("fault-free run failed %d cycles", failed)
					}
					if sched.wantRecovery && recovered != failed {
						t.Fatalf("failed %d cycles but recovered only %d", failed, recovered)
					}
				})
			}
		}
	}
}
