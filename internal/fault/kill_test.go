package fault

import (
	"sync"
	"testing"
)

func TestKillSwitchFiresOnce(t *testing.T) {
	k := NewKillSwitch(3)
	fired := 0
	k.kill = func() { fired++ }
	for i := 0; i < 10; i++ {
		k.Tick()
	}
	if fired != 1 {
		t.Fatalf("kill fired %d times, want 1", fired)
	}
}

func TestKillSwitchExactCount(t *testing.T) {
	k := NewKillSwitch(5)
	k.kill = func() {}
	for i := 0; i < 4; i++ {
		k.Tick()
	}
	if got := k.Remaining(); got != 1 {
		t.Fatalf("remaining after 4 ticks = %d, want 1", got)
	}
}

func TestKillSwitchConcurrent(t *testing.T) {
	k := NewKillSwitch(64)
	var mu sync.Mutex
	fired := 0
	k.kill = func() { mu.Lock(); fired++; mu.Unlock() }
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				k.Tick()
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("kill fired %d times under 256 concurrent ticks, want 1", fired)
	}
}

func TestKillSwitchInert(t *testing.T) {
	var k *KillSwitch
	k.Tick() // nil-safe
	if NewKillSwitch(0) != nil || NewKillSwitch(-3) != nil {
		t.Fatal("non-positive countdown should be inert (nil)")
	}
	if k.Remaining() != -1 {
		t.Fatal("nil Remaining should be -1")
	}
}
