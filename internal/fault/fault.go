// Package fault is the deterministic fault-injection layer of the match
// pipeline. An Injector decides, at named sites inside the parallel runtime
// (internal/prun), whether the arriving worker should panic, stall, or drop
// a steal attempt. Decisions come from two sources that compose:
//
//   - an explicit Plan — "the 7th arrival at site worker.exec panics" —
//     for targeted tests of one failure mode, and
//   - a seeded pseudo-random schedule — "with seed 42, roughly 1 in 2048
//     task executions panics" — for soak-style runs (-fault-seed on the
//     CLIs).
//
// Both are deterministic in the visit index: arrival k at a site always
// receives the same action for a given plan/seed. Under parallel execution
// the mapping of visit indices onto tasks depends on the interleaving, so
// *which* task is hit varies run to run, but the fault pattern itself —
// how many faults, at which arrival counts — is reproducible.
//
// A nil *Injector is fully inert: every probe costs one pointer test. The
// recovery machinery (the serial-fallback replay in prun/engine) never
// consults the injector, so a degraded cycle always completes.
package fault

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Site names an injection point in the match pipeline.
type Site uint8

// The instrumented sites. SiteExec is probed by every worker once per task,
// just before executing it; SiteSteal is probed once per steal attempt
// (per victim probed, under the multi-queue and work-stealing policies).
const (
	SiteExec Site = iota
	SiteSteal
	numSites
)

func (s Site) String() string {
	switch s {
	case SiteExec:
		return "worker.exec"
	case SiteSteal:
		return "worker.steal"
	}
	return "?"
}

// Kind is what an injected fault does to the arriving worker.
type Kind uint8

// KindPanic makes the worker panic (exercising the runtime's recover and
// the engine's serial fallback). KindStall blocks the worker for Delay or
// until the cycle aborts, whichever is first (exercising the quiescence
// watchdog). KindDropSteal makes one steal probe fail silently (perturbing
// schedules without failing the cycle).
const (
	KindNone Kind = iota
	KindPanic
	KindStall
	KindDropSteal
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindDropSteal:
		return "drop-steal"
	}
	return "none"
}

// Action is the injector's verdict for one site arrival. The zero Action
// means proceed normally.
type Action struct {
	Kind  Kind
	Delay time.Duration // KindStall only
}

// Fault is one scheduled fault: arrival number Visit (0-based) at Site
// performs Kind.
type Fault struct {
	Site  Site
	Kind  Kind
	Visit uint64
	Delay time.Duration
}

// Injector decides the action for each site arrival. Safe for concurrent
// use by all match workers; all methods are nil-safe.
type Injector struct {
	visits [numSites]atomic.Uint64
	fired  atomic.Int64
	plan   [numSites]map[uint64]Action

	// Seeded-random schedule: pXXX are per-65536 firing probabilities per
	// arrival at the relevant site (0 = never).
	seed       uint64
	pPanic     uint32
	pStall     uint32
	pDropSteal uint32
	stallFor   time.Duration
}

// Plan builds an injector from an explicit fault schedule.
func Plan(faults ...Fault) *Injector {
	in := &Injector{}
	for _, f := range faults {
		if f.Site >= numSites {
			continue
		}
		if in.plan[f.Site] == nil {
			in.plan[f.Site] = make(map[uint64]Action)
		}
		in.plan[f.Site][f.Visit] = Action{Kind: f.Kind, Delay: f.Delay}
	}
	return in
}

// Rates configures the seeded schedule: probabilities are per single site
// arrival, in units of 1/65536.
type Rates struct {
	Panic     uint32
	Stall     uint32
	DropSteal uint32
	StallFor  time.Duration
}

// DefaultRates is the CLI's -fault-seed schedule: rare panics and stalls,
// frequent dropped steals. Tuned so a multi-thousand-task run sees a
// handful of failed cycles without spending its whole life in recovery.
func DefaultRates() Rates {
	return Rates{Panic: 8, Stall: 4, DropSteal: 1024, StallFor: 2 * time.Millisecond}
}

// Seeded builds an injector whose decisions are a pure function of
// (seed, site, visit index).
func Seeded(seed int64, r Rates) *Injector {
	return &Injector{
		seed:       splitmix(uint64(seed) ^ 0x9e3779b97f4a7c15),
		pPanic:     r.Panic,
		pStall:     r.Stall,
		pDropSteal: r.DropSteal,
		stallFor:   r.StallFor,
	}
}

// splitmix is the SplitMix64 finalizer — the usual cheap avalanche.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Visit records one arrival at site and returns the action to take. The
// zero Action (KindNone) means proceed.
func (in *Injector) Visit(site Site) Action {
	if in == nil {
		return Action{}
	}
	v := in.visits[site].Add(1) - 1
	if m := in.plan[site]; m != nil {
		if a, ok := m[v]; ok {
			in.fired.Add(1)
			return a
		}
	}
	if in.seed != 0 {
		h := uint32(splitmix(in.seed^(uint64(site)<<56)^v)) & 0xffff
		var a Action
		switch site {
		case SiteExec:
			if h < in.pPanic {
				a = Action{Kind: KindPanic}
			} else if h < in.pPanic+in.pStall {
				a = Action{Kind: KindStall, Delay: in.stallFor}
			}
		case SiteSteal:
			if h < in.pDropSteal {
				a = Action{Kind: KindDropSteal}
			}
		}
		if a.Kind != KindNone {
			in.fired.Add(1)
			return a
		}
	}
	return Action{}
}

// Fired returns the number of faults injected so far.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	return in.fired.Load()
}

// Visits returns the arrival count recorded at site.
func (in *Injector) Visits(site Site) uint64 {
	if in == nil || site >= numSites {
		return 0
	}
	return in.visits[site].Load()
}

// String summarizes the schedule (for flag help and traces).
func (in *Injector) String() string {
	if in == nil {
		return "fault: none"
	}
	var parts []string
	for s := Site(0); s < numSites; s++ {
		for v, a := range in.plan[s] {
			parts = append(parts, fmt.Sprintf("%v@%v:%d", a.Kind, s, v))
		}
	}
	if in.seed != 0 {
		parts = append(parts, fmt.Sprintf("seeded(panic=%d stall=%d drop=%d /65536)", in.pPanic, in.pStall, in.pDropSteal))
	}
	if len(parts) == 0 {
		return "fault: empty"
	}
	return "fault: " + strings.Join(parts, " ")
}
