package fault

import (
	"os"
	"sync/atomic"
	"syscall"
)

// KillSwitch is the process-level member of the fault family: where
// Injector perturbs individual match workers inside a cycle, the kill
// switch takes out the whole process. Armed with a countdown N, the Nth
// Tick delivers an uncatchable SIGKILL to the process itself — no drain,
// no deferred handlers, no final snapshot — which is exactly the crash
// the durability layer (image + WAL, DESIGN §10) must absorb. CI's
// failover-smoke leg arms it via psmed -kill-after to murder a backend
// at a deterministic point in the request stream.
type KillSwitch struct {
	remaining atomic.Int64
	// kill is swapped out by tests; the real thing is not mockable twice.
	kill func()
}

// NewKillSwitch arms a switch that fires on the nth Tick (n <= 0 returns
// nil, which is inert).
func NewKillSwitch(n int64) *KillSwitch {
	if n <= 0 {
		return nil
	}
	k := &KillSwitch{}
	k.remaining.Store(n)
	k.kill = func() {
		// SIGKILL over os.Exit: no atexit paths run, file buffers are NOT
		// flushed — the honest crash. Kill can only fail if the process is
		// already dying; fall through to a hard exit so the switch never
		// silently disarms.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		os.Exit(137)
	}
	return k
}

// Tick counts one event (nil-safe). The tick that reaches zero fires the
// switch and does not return; later ticks (racing workers) are inert.
func (k *KillSwitch) Tick() {
	if k == nil {
		return
	}
	if k.remaining.Add(-1) == 0 {
		k.kill()
	}
}

// Remaining reports ticks left until the switch fires.
func (k *KillSwitch) Remaining() int64 {
	if k == nil {
		return -1
	}
	return k.remaining.Load()
}
