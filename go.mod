module soarpsme

go 1.22
